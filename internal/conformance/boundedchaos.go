package conformance

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"hunipu"
	"hunipu/internal/core"
	"hunipu/internal/cpuhung"
	"hunipu/internal/faultinject"
	"hunipu/internal/lsap"
)

// This file sweeps the degradation ladder's bounded-quality contract
// under fault injection, through the *public* API: every run of
// hunipu.SolveContext at WithQuality(Bounded(ε)) must end in an answer
// certified within ε of optimal — checked here against an independent
// exact reference, not the solver's own certificate — or in a typed
// error (*faultinject.FaultError from the injected fault classes,
// *lsap.GapError when the solver refuses to attest within ε). The ε=0
// tier degenerates to the exact contract and re-proves the RunChaos
// invariant through the quality knob.

// BoundedChaosConfig parameterises a bounded-quality fault sweep.
type BoundedChaosConfig struct {
	// Schedules is how many random fault schedules to draw per ε tier.
	Schedules int
	// Epsilons are the quality tiers swept; 0 means Bounded(0), the
	// exact contract.
	Epsilons []float64
	// Sizes are the instance sizes each schedule is run against.
	Sizes []int
	// Retries is the recovery budget handed to each solve.
	Retries int
	// Seed makes the sweep reproducible end to end.
	Seed int64
	// Tol as in Config.
	Tol float64
}

// DefaultBoundedChaosConfig meets the acceptance floor: ≥50 seeded
// fault schedules per ε tier, tiers {0, 0.01, 0.1}.
func DefaultBoundedChaosConfig() BoundedChaosConfig {
	return BoundedChaosConfig{
		Schedules: 50,
		Epsilons:  []float64{0, 0.01, 0.1},
		Sizes:     []int{10},
		Retries:   3,
		Seed:      2,
	}
}

// BoundedChaosReport aggregates a bounded sweep. The headline
// invariant: Wrong and Untyped stay empty — every run delivered an
// answer within its tier's ε of the independently computed optimum
// (with a self-consistent certificate) or failed typed.
type BoundedChaosReport struct {
	Runs int
	// Clean: no fault fired, answer within ε.
	Clean int
	// Survived: faults fired, retries recovered, answer still within ε.
	Survived int
	// TypedFaults: runs that failed with a typed *faultinject.FaultError.
	TypedFaults int
	// GapRefusals: runs where the solver withheld its answer with a
	// typed *lsap.GapError rather than return something it could not
	// certify within ε.
	GapRefusals int
	// MaxGap is the worst certified gap any successful run reported,
	// and MaxTrueGap the worst gap measured against the exact
	// reference (MaxTrueGap ≤ MaxGap up to tolerance: certificates may
	// be loose, never optimistic).
	MaxGap     float64
	MaxTrueGap float64
	// Wrong lists reproducers for runs whose answer exceeded ε against
	// the exact reference, mis-reported its own gap or cost, or failed
	// its dual certificate.
	Wrong []string
	// Untyped lists reproducers for runs that failed with an untyped
	// error.
	Untyped []string
}

// boundedRunCheck certifies one successful run against the exact
// reference cost and the run's own certificate. It returns a
// description of the first violation, or "".
func boundedRunCheck(m *lsap.Matrix, refCost, eps, tol float64, res *hunipu.Result) string {
	n := m.N
	asg := lsap.Assignment(res.Assignment)
	if err := asg.Validate(n); err != nil {
		return err.Error()
	}
	if cost := asg.Cost(m); cost-res.Cost > tol*(1+refCost) || res.Cost-cost > tol*(1+refCost) {
		return fmt.Sprintf("reported cost %g, assignment costs %g", res.Cost, cost)
	}
	if g := lsap.NormalizedGap(res.Cost, refCost); g > eps+tol {
		return fmt.Sprintf("true gap %g exceeds ε=%g", g, eps)
	}
	if res.Gap > eps+tol {
		return fmt.Sprintf("certified gap %g exceeds ε=%g", res.Gap, eps)
	}
	if res.Duals != nil {
		p := lsap.Potentials{U: res.Duals.U, V: res.Duals.V}
		if err := lsap.VerifyOptimalWithBound(m, asg, p, eps+tol); err != nil {
			return "dual certificate rejected: " + err.Error()
		}
	}
	return ""
}

// RunBoundedChaos sweeps random fault schedules over the public solve
// path at every ε tier in cfg.Epsilons, on the simulated IPU.
func RunBoundedChaos(cfg BoundedChaosConfig) (*BoundedChaosReport, error) {
	if cfg.Schedules <= 0 {
		cfg = DefaultBoundedChaosConfig()
	}
	tol := cfg.Tol
	if tol == 0 {
		tol = 1e-9
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ref := cpuhung.JV{}
	report := &BoundedChaosReport{}

	type inst struct {
		m     *lsap.Matrix
		costs [][]float64
		cost  float64
	}
	var instances []inst
	for _, n := range cfg.Sizes {
		m := genUniform(rand.New(rand.NewSource(rng.Int63())), n)
		sol, err := ref.Solve(m)
		if err != nil {
			return nil, fmt.Errorf("boundedchaos: reference solve n=%d: %w", n, err)
		}
		costs := make([][]float64, n)
		for i := range costs {
			costs[i] = append([]float64(nil), m.Row(i)...)
		}
		instances = append(instances, inst{m: m, costs: costs, cost: sol.Cost})
	}

	schedules := make([]*faultinject.Schedule, cfg.Schedules)
	for i := range schedules {
		schedules[i] = faultinject.RandomSchedule(rng)
	}

	for _, eps := range cfg.Epsilons {
		for _, sched := range schedules {
			for _, in := range instances {
				clone := sched.Clone()
				report.Runs++
				//hunipulint:ignore ctxflow chaos sweeps are uncancellable by design, like RunChaos's Solve calls
				res, err := hunipu.SolveContext(context.Background(), in.costs,
					hunipu.OnIPU(),
					hunipu.WithIPUOptions(core.Options{Config: smallIPU(), MaxSupersteps: 20000}),
					hunipu.WithQuality(hunipu.Bounded(eps)),
					hunipu.WithInjector(hunipu.DeviceIPU, clone),
					hunipu.WithRecovery(cfg.Retries, 0),
				)
				repro := func(why string) string {
					return fmt.Sprintf("ε=%g n=%d schedule %q: %s", eps, in.m.N, sched.String(), why)
				}
				if err != nil {
					var fe *faultinject.FaultError
					var ge *lsap.GapError
					switch {
					case errors.As(err, &ge):
						report.GapRefusals++
					case errors.As(err, &fe):
						report.TypedFaults++
					default:
						report.Untyped = append(report.Untyped, repro("err="+err.Error()))
					}
					continue
				}
				if why := boundedRunCheck(in.m, in.cost, eps, tol, res); why != "" {
					report.Wrong = append(report.Wrong, repro(why))
					continue
				}
				if res.Gap > report.MaxGap {
					report.MaxGap = res.Gap
				}
				if g := lsap.NormalizedGap(res.Cost, in.cost); g > report.MaxTrueGap {
					report.MaxTrueGap = g
				}
				if clone.Fired() > 0 {
					report.Survived++
				} else {
					report.Clean++
				}
			}
		}
	}
	return report, nil
}
