package conformance

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"hunipu/internal/cpuhung"
	"hunipu/internal/lsap"
)

// TestCrossSolverConformance is the headline check: every registered
// solver, every generator family, every result certified optimal from
// feasible duals and cross-checked against the certified reference
// cost. Run with -race; the per-solver goroutines in Run exercise the
// solvers' internal concurrency.
func TestCrossSolverConformance(t *testing.T) {
	cfg := DefaultConfig()
	if testing.Short() {
		cfg = ShortConfig()
	}
	report, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("conformance table (certified/solves per solver × family):\n%s", report.Table())
	for _, d := range report.Divergences {
		t.Errorf("divergence: %s", d)
	}
	// Every solver must actually have been exercised on every family.
	for _, s := range report.Solvers {
		for _, f := range report.Families {
			c := report.Cells[s+"/"+f]
			if c == nil || c.Solves == 0 {
				t.Errorf("%s never ran on family %s", s, f)
			} else if c.Certified == 0 {
				t.Errorf("%s produced no certified result on family %s", s, f)
			}
		}
	}
}

// TestMetamorphicProperties drives every solver through every
// metamorphic relation on representative adversarial instances.
func TestMetamorphicProperties(t *testing.T) {
	sizes := []int{4, 7, 9}
	if testing.Short() {
		sizes = []int{4, 7}
	}
	baseFamilies := map[string]bool{"uniform": true, "tied": true, "max-flipped": true}
	props := Properties()
	if len(props) < 5 {
		t.Fatalf("only %d metamorphic properties registered, want ≥ 5", len(props))
	}
	ct := NewCertifier()
	jv := cpuhung.JV{}

	for _, e := range Registry() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			s, err := e.New()
			if err != nil {
				t.Fatal(err)
			}
			for _, g := range Families() {
				if !baseFamilies[g.Name] {
					continue
				}
				for _, n := range sizes {
					if e.MaxN > 0 && n > e.MaxN {
						continue
					}
					rng := rand.New(rand.NewSource(int64(n)*100 + 7))
					c := g.Gen(rng, n)
					base, err := jv.Solve(c)
					if err != nil {
						t.Fatal(err)
					}
					if err := ct.Certify(c, base); err != nil {
						t.Fatalf("base certificate %s n=%d: %v", g.Name, n, err)
					}
					for _, p := range props {
						// Pad-dummy can push BruteForce past its size cap.
						if e.MaxN > 0 && p.Name == "pad-dummy" && n+2 > e.MaxN {
							continue
						}
						if err := CheckProperty(s, p, c, base.Cost, ct, rng); err != nil {
							t.Errorf("family %s n=%d: %v", g.Name, n, err)
						}
					}
				}
			}
		})
	}
}

// TestRegistryComplete pins the solver set, so dropping a solver from
// the registry (and thereby from all conformance coverage) is loud.
func TestRegistryComplete(t *testing.T) {
	want := []string{
		"CPU-JV", "CPU-ParallelJV", "CPU-Munkres", "CPU-Auction",
		"HunIPU", "HunIPU-nocompress", "HunIPU-2D",
		"HunIPU-shard2", "HunIPU-shard4",
		"FastHA", "IPU-Auction", "GPU-Auction", "BruteForce",
	}
	got := map[string]bool{}
	for _, e := range Registry() {
		got[e.Name] = true
		s, err := e.New()
		if err != nil {
			t.Errorf("%s: constructor failed: %v", e.Name, err)
			continue
		}
		if s.Name() != e.Name {
			t.Errorf("registry name %q but solver reports %q", e.Name, s.Name())
		}
	}
	for _, name := range want {
		if !got[name] {
			t.Errorf("solver %s missing from registry", name)
		}
	}
	if _, err := Lookup("CPU-JV"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("no-such-solver"); err == nil {
		t.Error("Lookup of unknown solver succeeded")
	}
}

// TestGeneratorsDeterministicAndInteger: same seed ⇒ same matrix, and
// every family emits finite integer values (the exactness contract the
// auction solvers rely on).
func TestGeneratorsDeterministicAndInteger(t *testing.T) {
	for _, g := range Families() {
		for _, n := range []int{1, 2, 5, 8} {
			a := g.Gen(rand.New(rand.NewSource(42)), n)
			b := g.Gen(rand.New(rand.NewSource(42)), n)
			if a.N != n || b.N != n {
				t.Fatalf("%s: size %d/%d, want %d", g.Name, a.N, b.N, n)
			}
			for i := range a.Data {
				if a.Data[i] != b.Data[i] {
					t.Fatalf("%s n=%d: not deterministic at %d", g.Name, n, i)
				}
				v := a.Data[i]
				if math.IsNaN(v) || math.IsInf(v, 0) || v == lsap.Forbidden {
					t.Fatalf("%s n=%d: non-finite entry %g", g.Name, n, v)
				}
				if v != math.Trunc(v) {
					t.Fatalf("%s n=%d: non-integer entry %g", g.Name, n, v)
				}
			}
		}
	}
}

// TestOracleRejectsBadSolutions is the oracle's own falsification test:
// corrupted assignments, wrong costs, and suboptimal matchings must all
// fail certification.
func TestOracleRejectsBadSolutions(t *testing.T) {
	c, _ := lsap.FromRows([][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	})
	ct := NewCertifier()
	good, err := (cpuhung.JV{}).Solve(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := ct.Certify(c, good); err != nil {
		t.Fatalf("optimal solution rejected: %v", err)
	}

	// Suboptimal matching without potentials: the borrowed-dual bound
	// must reject it.
	bad := &lsap.Solution{Assignment: lsap.Assignment{0, 1, 2}}
	bad.Cost = bad.Assignment.Cost(c)
	if err := ct.Certify(c, bad); err == nil {
		t.Error("suboptimal matching certified")
	}

	// Right matching, lying about the cost.
	lying := &lsap.Solution{Assignment: append(lsap.Assignment(nil), good.Assignment...), Cost: good.Cost - 1}
	if err := ct.Certify(c, lying); err == nil {
		t.Error("mismatched reported cost certified")
	}

	// Not a matching at all.
	invalid := &lsap.Solution{Assignment: lsap.Assignment{0, 0, 0}, Cost: 9}
	if err := ct.Certify(c, invalid); err == nil {
		t.Error("non-matching certified")
	}

	// Own potentials that are infeasible must fail even with an
	// optimal matching.
	forged := &lsap.Solution{
		Assignment: append(lsap.Assignment(nil), good.Assignment...),
		Cost:       good.Cost,
		Potentials: &lsap.Potentials{U: []float64{100, 100, 100}, V: []float64{0, 0, 0}},
	}
	if err := ct.Certify(c, forged); err == nil {
		t.Error("infeasible own-potentials certified")
	}

	if err := ct.Certify(c, nil); err == nil {
		t.Error("nil solution certified")
	}
}

// TestReportTable smoke-checks the divergence table rendering.
func TestReportTable(t *testing.T) {
	r := &Report{
		Solvers:  []string{"A", "Longer-Name"},
		Families: []string{"uniform", "tied"},
		Cells:    map[string]*Cell{},
	}
	r.cell("A", "uniform").Solves = 3
	r.cell("A", "uniform").Certified = 3
	c := r.cell("Longer-Name", "tied")
	c.Solves, c.Certified, c.Divergences = 2, 1, 1
	tab := r.Table()
	for _, want := range []string{"solver", "uniform", "tied", "3/3", "1/2!"} {
		if !strings.Contains(tab, want) {
			t.Errorf("table missing %q:\n%s", want, tab)
		}
	}
}
