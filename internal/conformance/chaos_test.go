package conformance

import (
	"os"
	"strconv"
	"testing"
)

// chaosSeed honours CHAOS_SEED so CI can sweep a seed matrix and a
// failing schedule can be replayed locally with the same seed.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	v := os.Getenv("CHAOS_SEED")
	if v == "" {
		return 1
	}
	seed, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		t.Fatalf("CHAOS_SEED=%q: %v", v, err)
	}
	return seed
}

// TestChaosInvariant is the robustness acceptance gate: ≥50 random
// fault schedules per chaos-capable solver, and every single run must
// end in a certified optimum or a typed error — never a silently
// wrong answer.
func TestChaosInvariant(t *testing.T) {
	cfg := DefaultChaosConfig()
	cfg.Seed = chaosSeed(t)
	if testing.Short() {
		cfg.Schedules = 50
		cfg.Sizes = []int{8}
	}
	if cfg.Schedules < 50 {
		t.Fatalf("config sweeps %d schedules, acceptance floor is 50", cfg.Schedules)
	}
	rep, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	t.Logf("chaos seed=%d: %d runs, %d clean, %d survived, %d typed errors",
		cfg.Seed, rep.Runs, rep.Clean, rep.Survived, rep.TypedError)
	// A sweep where no schedule ever fires, or where no run survives a
	// fired fault, means the generator or the recovery path is dead.
	if rep.Survived == 0 {
		t.Error("no run survived an injected fault: recovery path never exercised")
	}
	if rep.TypedError == 0 {
		t.Error("no run failed: fault injection never exercised a fatal path")
	}
}

// TestChaosDeterministic: the same seed must replay the exact same
// sweep, or CHAOS_SEED reproducers are worthless.
func TestChaosDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos replay is covered by the full run")
	}
	cfg := ChaosConfig{Schedules: 50, Sizes: []int{8}, Retries: 2, Seed: 42}
	a, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Runs != b.Runs || a.Clean != b.Clean || a.Survived != b.Survived || a.TypedError != b.TypedError {
		t.Fatalf("same seed, different sweeps: %+v vs %+v", a, b)
	}
}
