// Package conformance is the cross-solver correctness substrate of the
// repository: every LSAP solver — HunIPU on the simulated IPU, the GPU
// baselines on the SIMT simulator, and the native CPU solvers — is
// registered behind the one lsap.Solver interface and exercised against
//
//   - a family of seeded adversarial generators (ties, degeneracy,
//     near-infinite magnitudes, rectangular padding, maximisation
//     flips; see generators.go),
//   - a metamorphic property engine asserting how the optimal cost must
//     transform under row/column permutation, transposition, additive
//     row shifts, scalar scaling, dummy padding, and min↔max duality
//     (see metamorphic.go), and
//   - a dual-certificate oracle that proves each result optimal from
//     feasible LP duals rather than by comparison against a trusted
//     solver (see oracle.go).
//
// The paper's evaluation hinges on all implementations computing the
// same optimum; this package is where that claim is enforced before any
// performance PR lands. All generated workloads are integer-valued, the
// repository's convention, so every registered solver — including the
// ε-scaling auctions, which are exact only on integer costs — must
// agree bit-for-bit on the optimal cost.
package conformance

import (
	"fmt"

	"hunipu/internal/core"
	"hunipu/internal/cpuhung"
	"hunipu/internal/fastha"
	"hunipu/internal/gpuauction"
	"hunipu/internal/ipu"
	"hunipu/internal/ipuauction"
	"hunipu/internal/lsap"
	"hunipu/internal/poplar"
	"hunipu/internal/shard"
)

// Entry describes one registered solver and the constraints the
// harness must respect when driving it.
type Entry struct {
	// Name is the registry key; it matches the solver's Name().
	Name string
	// New constructs a fresh solver instance. Each conformance run
	// builds its own instances, so runs never share mutable state.
	New func() (lsap.Solver, error)
	// MaxN caps the instance size this solver is asked to handle
	// (0 = no cap). Only the factorial brute-force oracle needs one.
	MaxN int
	// SupportsForbidden reports whether the solver accepts
	// lsap.Forbidden entries; generators never emit them, but the
	// fuzz targets use this to route masked instances.
	SupportsForbidden bool
	// Certifying reports whether the solver emits its own dual
	// potentials; the oracle then checks complementary slackness
	// directly instead of borrowing duals.
	Certifying bool
}

// smallIPU is the reduced simulated device used throughout the test
// suites: Mk2 proportions with 64 tiles, so graph compilation stays
// fast at conformance sizes.
func smallIPU() ipu.Config {
	cfg := ipu.MK2()
	cfg.TilesPerIPU = 64
	return cfg
}

// paddedFastHA adapts FastHA's power-of-two restriction to the common
// Solver interface the way the paper does: zero-padding (in cost space,
// max+1 padding) to the next 2^m via SolvePadded.
type paddedFastHA struct{ s *fastha.Solver }

func (p paddedFastHA) Name() string { return p.s.Name() }

func (p paddedFastHA) Solve(c *lsap.Matrix) (*lsap.Solution, error) {
	r, err := p.s.SolvePadded(c)
	if err != nil {
		return nil, err
	}
	return r.Solution, nil
}

// Registry returns every solver in the repository. Adding a solver to
// the codebase means adding it here; TestRegistryComplete pins the
// expected set so accidental drops fail loudly.
func Registry() []Entry {
	return []Entry{
		{
			Name:              "CPU-JV",
			New:               func() (lsap.Solver, error) { return cpuhung.JV{}, nil },
			SupportsForbidden: true,
			Certifying:        true,
		},
		{
			Name:              "CPU-ParallelJV",
			New:               func() (lsap.Solver, error) { return cpuhung.ParallelJV{}, nil },
			SupportsForbidden: true,
			Certifying:        true,
		},
		{
			Name: "CPU-Munkres",
			New:  func() (lsap.Solver, error) { return cpuhung.Munkres{}, nil },
		},
		{
			Name: "CPU-Auction",
			New:  func() (lsap.Solver, error) { return cpuhung.Auction{}, nil },
		},
		{
			Name: "HunIPU",
			New: func() (lsap.Solver, error) {
				return core.New(core.Options{Config: smallIPU()})
			},
		},
		{
			Name: "HunIPU-nocompress",
			New: func() (lsap.Solver, error) {
				return core.New(core.Options{Config: smallIPU(), DisableCompression: true})
			},
		},
		{
			Name: "HunIPU-2D",
			New: func() (lsap.Solver, error) {
				return core.New(core.Options{Config: smallIPU(), Use2D: true})
			},
		},
		{
			Name: "HunIPU-shard2",
			New: func() (lsap.Solver, error) {
				return shard.New(shard.Options{Config: smallIPU(), Devices: 2, Guard: poplar.GuardChecksums, Cache: shard.NewPlanCache()})
			},
			Certifying: true,
		},
		{
			Name: "HunIPU-shard4",
			New: func() (lsap.Solver, error) {
				return shard.New(shard.Options{Config: smallIPU(), Devices: 4, Guard: poplar.GuardChecksums, Cache: shard.NewPlanCache()})
			},
			Certifying: true,
		},
		{
			Name: "FastHA",
			New: func() (lsap.Solver, error) {
				s, err := fastha.New(fastha.Options{})
				if err != nil {
					return nil, err
				}
				return paddedFastHA{s}, nil
			},
		},
		{
			Name: "IPU-Auction",
			New: func() (lsap.Solver, error) {
				return ipuauction.New(ipuauction.Options{Config: smallIPU()})
			},
		},
		{
			Name: "GPU-Auction",
			New:  func() (lsap.Solver, error) { return gpuauction.New(gpuauction.Options{}) },
		},
		{
			Name:              "BruteForce",
			New:               func() (lsap.Solver, error) { return lsap.BruteForce{}, nil },
			MaxN:              9,
			SupportsForbidden: true,
		},
	}
}

// Lookup returns the entry with the given name.
func Lookup(name string) (Entry, error) {
	for _, e := range Registry() {
		if e.Name == name {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("conformance: no solver %q in registry", name)
}
