package conformance

import (
	"math/rand"
	"sort"
	"testing"

	"hunipu/internal/poplar"
)

// poplarBacked names the registry entries whose Solve path compiles a
// poplar graph; each must trigger at least one static verification.
var poplarBacked = map[string]bool{
	"HunIPU":            true,
	"HunIPU-nocompress": true,
	"HunIPU-2D":         true,
	"IPU-Auction":       true,
}

// TestCompiledGraphsPassStaticVerification drives every registered
// solver through a solve and requires that every poplar graph compiled
// along the way passed the ahead-of-run verifier with zero findings —
// the static counterpart to the dual-certificate oracle: the result is
// optimal AND the graph that produced it provably respects C1 and C2.
func TestCompiledGraphsPassStaticVerification(t *testing.T) {
	type seenReport struct {
		report *poplar.VerifyReport
	}
	var seen []seenReport
	poplar.SetVerifyObserver(func(r *poplar.VerifyReport) {
		seen = append(seen, seenReport{report: r})
	})
	defer poplar.SetVerifyObserver(nil)

	uniform := Families()[0]
	if uniform.Name != "uniform" {
		t.Fatalf("first generator family is %q, want uniform", uniform.Name)
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			n := 16
			if e.MaxN > 0 && n > e.MaxN {
				n = e.MaxN
			}
			m := uniform.Gen(rand.New(rand.NewSource(12345)), n)
			s, err := e.New()
			if err != nil {
				t.Fatal(err)
			}
			before := len(seen)
			if _, err := s.Solve(m.Clone()); err != nil {
				t.Fatalf("%s failed to solve: %v", e.Name, err)
			}
			reports := seen[before:]
			if poplarBacked[e.Name] && len(reports) == 0 {
				t.Fatalf("%s is poplar-backed but compiled no verified graph", e.Name)
			}
			for _, sr := range reports {
				if n := len(sr.report.Findings); n != 0 {
					var msgs []string
					for _, f := range sr.report.Findings {
						msgs = append(msgs, f.String())
					}
					sort.Strings(msgs)
					t.Fatalf("%s compiled a graph with %d verification findings:\n%v", e.Name, n, msgs)
				}
			}
		})
	}
}

// TestPoplarBackedSetMatchesRegistry keeps poplarBacked honest: every
// name in it must exist in the registry.
func TestPoplarBackedSetMatchesRegistry(t *testing.T) {
	for name := range poplarBacked {
		if _, err := Lookup(name); err != nil {
			t.Errorf("poplarBacked lists %q, which is not registered: %v", name, err)
		}
	}
}
