package conformance

import (
	"context"
	"fmt"
	"math/rand"

	"hunipu/internal/cpuhung"
	"hunipu/internal/faultinject"
	"hunipu/internal/lsap"
	"hunipu/internal/poplar"
	"hunipu/internal/shard"
)

// ShardChaosConfig parameterises a fabric chaos sweep: the shard-level
// counterpart of ChaosConfig, with device-loss and link-loss schedules
// drawn per fabric size so chips die and links flap on every run shape.
type ShardChaosConfig struct {
	// Schedules is how many random shard schedules to draw per fabric.
	Schedules int
	// Fabrics are the fabric sizes K swept.
	Fabrics []int
	// Sizes are the instance sizes each schedule is run against.
	Sizes []int
	// Retries is the rollback budget per solve.
	Retries int
	// Seed drives schedules and instances, reproducibly.
	Seed int64
	// Tol as in Config.
	Tol float64
}

// DefaultShardChaosConfig meets the acceptance floor: ≥50 device-loss /
// link-loss schedules per fabric size in {2, 4}.
func DefaultShardChaosConfig() ShardChaosConfig {
	return ShardChaosConfig{Schedules: 50, Fabrics: []int{2, 4}, Sizes: []int{8, 13}, Retries: 3, Seed: 1}
}

// ShardChaosReport aggregates a fabric sweep. On top of the outcome
// counts it tracks whether the sweep actually exercised the fabric
// machinery: chips lost, re-shardings survived, rollbacks absorbed.
type ShardChaosReport struct {
	Runs       int
	Clean      int
	Survived   int
	TypedError int
	// DevicesLost / Reshards / Rollbacks sum the fabric events observed
	// across all runs, failed ones included.
	DevicesLost int
	Reshards    int
	Rollbacks   int
	// Violations carry a reproducer: fabric, schedule spec, size.
	Violations []string
}

// RunShardChaos sweeps random device-loss and link-loss schedules over
// sharded solvers and enforces the same invariant as RunChaos: every
// run ends in a certified optimum or a typed error — a dying chip or a
// flapping link must never yield a silently wrong assignment.
func RunShardChaos(cfg ShardChaosConfig) (*ShardChaosReport, error) {
	if cfg.Schedules <= 0 {
		cfg = DefaultShardChaosConfig()
	}
	tol := cfg.Tol
	if tol == 0 {
		tol = 1e-9
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ct := NewCertifier()
	ct.Tol = tol
	ref := cpuhung.JV{}
	report := &ShardChaosReport{}

	type inst struct {
		m    *lsap.Matrix
		cost float64
	}
	var instances []inst
	for _, n := range cfg.Sizes {
		m := genUniform(rand.New(rand.NewSource(rng.Int63())), n)
		sol, err := ref.Solve(m)
		if err != nil {
			return nil, fmt.Errorf("shardchaos: reference solve n=%d: %w", n, err)
		}
		instances = append(instances, inst{m: m, cost: sol.Cost})
	}

	for _, k := range cfg.Fabrics {
		cache := shard.NewPlanCache()
		for i := 0; i < cfg.Schedules; i++ {
			sched := faultinject.RandomShardSchedule(rng, k)
			for _, in := range instances {
				clone := sched.Clone()
				// Guarded at the sharded default: loud loss schedules never
				// trip the guard, but the sweep should exercise the same
				// configuration production fabrics run.
				s, err := shard.New(shard.Options{
					Config:     smallIPU(),
					Devices:    k,
					Fault:      clone,
					MaxRetries: cfg.Retries,
					Guard:      poplar.GuardChecksums,
					Cache:      cache,
				})
				if err != nil {
					return nil, fmt.Errorf("shardchaos: K=%d constructor: %w", k, err)
				}
				report.Runs++
				//hunipulint:ignore ctxflow chaos sweeps are uncancellable by design, like RunChaos's Solve calls
				res, err := s.SolveShards(context.Background(), in.m.Clone())
				if res != nil {
					report.DevicesLost += len(res.LostDevices)
					report.Reshards += len(res.Reshards)
					report.Rollbacks += res.Rollbacks
				}
				var sol *lsap.Solution
				if res != nil {
					sol = res.Solution
				}
				switch classifyChaos(ct, in.m, in.cost, tol, sol, err, clone.Fired()) {
				case ChaosClean:
					report.Clean++
				case ChaosSurvived:
					report.Survived++
				case ChaosTypedError:
					report.TypedError++
				default:
					report.Violations = append(report.Violations, fmt.Sprintf(
						"K=%d n=%d schedule %q: err=%v", k, in.m.N, sched.String(), err))
				}
			}
		}
	}
	return report, nil
}
