package conformance

import (
	"testing"
)

// TestBoundedChaosCertifiedOrTyped is the degradation-ladder
// acceptance sweep: ≥50 seeded fault schedules per ε tier through the
// public WithQuality path, and every run ends within ε of the
// independently computed optimum or as a typed error — a bounded solve
// is never silently worse than promised, and Bounded(0) re-proves the
// exact invariant.
func TestBoundedChaosCertifiedOrTyped(t *testing.T) {
	cfg := DefaultBoundedChaosConfig()
	cfg.Seed = chaosSeed(t)
	if cfg.Schedules < 50 {
		t.Fatalf("config sweeps %d schedules, acceptance floor is 50", cfg.Schedules)
	}
	for _, eps := range []float64{0, 0.01, 0.1} {
		found := false
		for _, have := range cfg.Epsilons {
			if have == eps {
				found = true
			}
		}
		if !found {
			t.Fatalf("ε tier %g missing from %v; the acceptance grid requires it", eps, cfg.Epsilons)
		}
	}
	rep, err := RunBoundedChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Schedules * len(cfg.Sizes) * len(cfg.Epsilons)
	if rep.Runs != want {
		t.Fatalf("Runs = %d, want %d", rep.Runs, want)
	}
	for _, v := range rep.Wrong {
		t.Errorf("bounded answer outside its contract: %s", v)
	}
	for _, v := range rep.Untyped {
		t.Errorf("untyped failure on the bounded path: %s", v)
	}
	if rep.Survived == 0 {
		t.Fatalf("sweep never recovered through a fault: %+v", rep)
	}
	if rep.MaxTrueGap > rep.MaxGap+1e-9 {
		t.Fatalf("true gap %g exceeds worst certified gap %g — a certificate was optimistic",
			rep.MaxTrueGap, rep.MaxGap)
	}
	t.Logf("bounded chaos seed=%d: %d runs, %d clean, %d survived, %d fault errors, %d gap refusals, max certified gap %g (true %g)",
		cfg.Seed, rep.Runs, rep.Clean, rep.Survived, rep.TypedFaults, rep.GapRefusals, rep.MaxGap, rep.MaxTrueGap)
}

// TestBoundedChaosDeterministic: the same seed must replay the exact
// same sweep, or CHAOS_SEED reproducers are worthless.
func TestBoundedChaosDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("bounded chaos replay is covered by the full run")
	}
	cfg := BoundedChaosConfig{
		Schedules: 25, Epsilons: []float64{0, 0.05}, Sizes: []int{10},
		Retries: 2, Seed: 42,
	}
	a, err := RunBoundedChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBoundedChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Runs != b.Runs || a.Clean != b.Clean || a.Survived != b.Survived ||
		a.TypedFaults != b.TypedFaults || a.GapRefusals != b.GapRefusals {
		t.Fatalf("same seed, different sweeps: %+v vs %+v", a, b)
	}
}
