package conformance

import (
	"math/rand"

	"hunipu/internal/lsap"
)

// Generator is one seeded adversarial workload family. All families
// emit finite, integer-valued matrices (the repository's exactness
// convention), so every solver — including the ε-scaling auctions —
// must reproduce the optimal cost exactly.
type Generator struct {
	Name string
	// Gen builds an n×n instance from the given stream. The same
	// (seed, n) always yields the same matrix.
	Gen func(rng *rand.Rand, n int) *lsap.Matrix
}

// Families returns every generator family, in the order reports use.
func Families() []Generator {
	return []Generator{
		{Name: "uniform", Gen: genUniform},
		{Name: "tied", Gen: genTied},
		{Name: "constant", Gen: genConstant},
		{Name: "degenerate-rows", Gen: genDegenerateRows},
		{Name: "near-inf", Gen: genNearInf},
		{Name: "spread", Gen: genSpread},
		{Name: "rect-padded", Gen: genRectPadded},
		{Name: "max-flipped", Gen: genMaxFlipped},
	}
}

// genUniform is the baseline workload: integers uniform in [1, 10n],
// the paper's k = 10 value range.
func genUniform(rng *rand.Rand, n int) *lsap.Matrix {
	m := lsap.NewMatrix(n)
	for i := range m.Data {
		m.Data[i] = float64(1 + rng.Intn(10*n))
	}
	return m
}

// genTied draws from {1, 2, 3} only, so almost every instance has many
// optimal matchings — the regime where solvers legitimately disagree on
// the assignment and only cost comparison plus certificates are sound.
func genTied(rng *rand.Rand, n int) *lsap.Matrix {
	m := lsap.NewMatrix(n)
	for i := range m.Data {
		m.Data[i] = float64(1 + rng.Intn(3))
	}
	return m
}

// genConstant is total degeneracy: every entry equal, every matching
// optimal. Exercises zero-slack paths (every entry is a zero after the
// initial subtraction).
func genConstant(rng *rand.Rand, n int) *lsap.Matrix {
	v := float64(1 + rng.Intn(100))
	m := lsap.NewMatrix(n)
	for i := range m.Data {
		m.Data[i] = v
	}
	return m
}

// genDegenerateRows makes roughly half the rows constant (those rows
// are indifferent to their column) and the rest uniform, mixing
// degenerate and informative structure in one instance.
func genDegenerateRows(rng *rand.Rand, n int) *lsap.Matrix {
	m := lsap.NewMatrix(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			v := float64(1 + rng.Intn(50))
			for j := 0; j < n; j++ {
				m.Set(i, j, v)
			}
		} else {
			for j := 0; j < n; j++ {
				m.Set(i, j, float64(1+rng.Intn(50)))
			}
		}
	}
	return m
}

// genNearInf uses magnitudes around 10^12 with small relative spreads:
// still exactly representable in float64 (and far below lsap.Forbidden)
// but adversarial for any solver that accumulates slacks or ε-scales
// from the value range.
func genNearInf(rng *rand.Rand, n int) *lsap.Matrix {
	const base = 1e12
	m := lsap.NewMatrix(n)
	for i := range m.Data {
		m.Data[i] = base + float64(rng.Intn(1000))
	}
	return m
}

// genSpread mixes tiny and huge entries in one matrix (1 vs 10^9): the
// dynamic range stresses ε-scaling phase counts and slack updates.
func genSpread(rng *rand.Rand, n int) *lsap.Matrix {
	m := lsap.NewMatrix(n)
	for i := range m.Data {
		if rng.Intn(2) == 0 {
			m.Data[i] = float64(1 + rng.Intn(5))
		} else {
			m.Data[i] = float64(1_000_000_000 + rng.Intn(1000))
		}
	}
	return m
}

// genRectPadded reproduces the public API's rectangular handling as a
// square instance: a real r×n block (r < n) padded with dummy rows at
// max+1, so the optimum must route every dummy row to the columns the
// real rows do not want.
func genRectPadded(rng *rand.Rand, n int) *lsap.Matrix {
	if n < 2 {
		return genUniform(rng, n)
	}
	r := n - 1 - rng.Intn(min(2, n-1))
	m := lsap.NewMatrix(n)
	maxV := 0.0
	for i := 0; i < r; i++ {
		for j := 0; j < n; j++ {
			v := float64(1 + rng.Intn(10*n))
			if v > maxV {
				maxV = v
			}
			m.Set(i, j, v)
		}
	}
	for i := r; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, maxV+1)
		}
	}
	return m
}

// genMaxFlipped generates a uniform instance and converts it to the
// minimisation form of its maximisation problem via Negate (v → max−v),
// the transformation Maximize() applies in the public API.
func genMaxFlipped(rng *rand.Rand, n int) *lsap.Matrix {
	return genUniform(rng, n).Negate()
}

// Instance names one generated problem, reproducibly: family, size and
// seed fully determine the matrix.
type Instance struct {
	Family string
	N      int
	Seed   int64
	Matrix *lsap.Matrix
}

// Instances enumerates trials×len(sizes) instances per family,
// deterministically from the base seed.
func Instances(families []Generator, sizes []int, trials int, seed int64) []Instance {
	var out []Instance
	for _, g := range families {
		for _, n := range sizes {
			for t := 0; t < trials; t++ {
				s := seed + int64(len(out))
				rng := rand.New(rand.NewSource(s))
				out = append(out, Instance{
					Family: g.Name,
					N:      n,
					Seed:   s,
					Matrix: g.Gen(rng, n),
				})
			}
		}
	}
	return out
}
