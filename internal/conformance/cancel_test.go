package conformance

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"hunipu/internal/core"
	"hunipu/internal/cpuhung"
	"hunipu/internal/fastha"
	"hunipu/internal/faultinject"
	"hunipu/internal/lsap"
)

// cancelAt is a benign injector that never faults but cancels the
// context once the device clock passes a threshold — a deterministic
// way to land a cancellation mid-solve on the simulated devices.
type cancelAt struct {
	cancel context.CancelFunc
	at     int64
}

func (c cancelAt) Check(p faultinject.Point) *faultinject.FaultError {
	if p.Kind == faultinject.KindSuperstep && p.Superstep >= c.at {
		c.cancel()
	}
	return nil
}

func TestCancelMidSolveIPU(t *testing.T) {
	before := runtime.NumGoroutine()
	m := genUniform(rand.New(rand.NewSource(11)), 16)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, err := core.New(core.Options{
		Config: smallIPU(),
		Fault:  cancelAt{cancel: cancel, at: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.SolveContext(ctx, m)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	CheckNoLeak(t, before)
}

func TestCancelMidSolveGPU(t *testing.T) {
	before := runtime.NumGoroutine()
	m := genUniform(rand.New(rand.NewSource(12)), 16)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, err := fastha.New(fastha.Options{Fault: cancelAt{cancel: cancel, at: 10}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.SolveContext(ctx, m)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	CheckNoLeak(t, before)
}

func TestCancelMidSolveCPU(t *testing.T) {
	before := runtime.NumGoroutine()
	// The native solver has no injection hook, so cancellation lands on
	// the wall clock; grow the instance until the cancel wins the race.
	for _, n := range []int{300, 600, 1200} {
		m := genUniform(rand.New(rand.NewSource(13)), n)
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(time.Millisecond)
			cancel()
		}()
		_, err := cpuhung.JV{}.SolveContext(ctx, m)
		cancel()
		if errors.Is(err, context.Canceled) {
			CheckNoLeak(t, before)
			return
		}
		if err != nil {
			t.Fatalf("n=%d: err = %v, want context.Canceled or clean finish", n, err)
		}
	}
	t.Fatal("solver finished before cancellation on every instance size")
}

func TestDeadlineExpiredAllDevices(t *testing.T) {
	before := runtime.NumGoroutine()
	m := genUniform(rand.New(rand.NewSource(14)), 16)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()

	solvers := []lsap.ContextSolver{cpuhung.JV{}}
	if s, err := core.New(core.Options{Config: smallIPU()}); err == nil {
		solvers = append(solvers, s)
	} else {
		t.Fatal(err)
	}
	if s, err := fastha.New(fastha.Options{}); err == nil {
		solvers = append(solvers, s)
	} else {
		t.Fatal(err)
	}
	for _, s := range solvers {
		if _, err := s.SolveContext(ctx, m); !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%s: err = %v, want context.DeadlineExceeded", s.Name(), err)
		}
	}
	CheckNoLeak(t, before)
}
