package conformance

import (
	"fmt"
	"math"
	"math/rand"

	"hunipu/internal/lsap"
)

// Property is one metamorphic relation: a transformation of the cost
// matrix together with the exact mapping it induces on the optimal
// cost. Asserting the relation needs no oracle at all — only the base
// instance's (already certified) optimal cost.
type Property struct {
	Name string
	// Derive builds the transformed instance and the optimal cost it
	// must have, given the base instance and its optimal cost.
	Derive func(c *lsap.Matrix, baseCost float64, rng *rand.Rand) (*lsap.Matrix, float64)
}

// Properties returns the metamorphic relations every solver must
// satisfy. All transformations preserve integrality, so the expected
// costs are exact.
func Properties() []Property {
	return []Property{
		{Name: "row-permutation", Derive: deriveRowPerm},
		{Name: "col-permutation", Derive: deriveColPerm},
		{Name: "transpose", Derive: deriveTranspose},
		{Name: "row-shift", Derive: deriveRowShift},
		{Name: "scale", Derive: deriveScale},
		{Name: "minmax-duality", Derive: deriveMinMaxDuality},
		{Name: "pad-dummy", Derive: derivePadDummy},
	}
}

// deriveRowPerm: permuting rows permutes the matching but leaves the
// optimal cost unchanged.
func deriveRowPerm(c *lsap.Matrix, baseCost float64, rng *rand.Rand) (*lsap.Matrix, float64) {
	perm := rng.Perm(c.N)
	out := lsap.NewMatrix(c.N)
	for i, pi := range perm {
		copy(out.Row(i), c.Row(pi))
	}
	return out, baseCost
}

// deriveColPerm: permuting columns leaves the optimal cost unchanged.
func deriveColPerm(c *lsap.Matrix, baseCost float64, rng *rand.Rand) (*lsap.Matrix, float64) {
	perm := rng.Perm(c.N)
	out := lsap.NewMatrix(c.N)
	for i := 0; i < c.N; i++ {
		for j, pj := range perm {
			out.Set(i, j, c.At(i, pj))
		}
	}
	return out, baseCost
}

// deriveTranspose: the assignment problem is symmetric in rows and
// columns, so C and Cᵀ have the same optimal cost.
func deriveTranspose(c *lsap.Matrix, baseCost float64, rng *rand.Rand) (*lsap.Matrix, float64) {
	out := lsap.NewMatrix(c.N)
	for i := 0; i < c.N; i++ {
		for j := 0; j < c.N; j++ {
			out.Set(j, i, c.At(i, j))
		}
	}
	return out, baseCost
}

// deriveRowShift: adding δ to every entry of one row shifts every
// matching's cost by exactly δ (each row contributes exactly one edge).
func deriveRowShift(c *lsap.Matrix, baseCost float64, rng *rand.Rand) (*lsap.Matrix, float64) {
	if c.N == 0 {
		return c.Clone(), baseCost
	}
	delta := float64(1 + rng.Intn(7))
	row := rng.Intn(c.N)
	out := c.Clone()
	for j := 0; j < c.N; j++ {
		out.Set(row, j, out.At(row, j)+delta)
	}
	return out, baseCost + delta
}

// deriveScale: multiplying every entry by a positive integer s scales
// every matching's cost — and therefore the optimum — by s.
func deriveScale(c *lsap.Matrix, baseCost float64, rng *rand.Rand) (*lsap.Matrix, float64) {
	s := float64(2 + rng.Intn(3))
	out := c.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out, baseCost * s
}

// deriveMinMaxDuality: Negate maps minimisation to maximisation
// (v → max−v). Applying it twice yields C − min(C), so the optimal cost
// must drop by exactly n·min(C). A solver that mishandles either
// direction of the min↔max conversion breaks the identity.
func deriveMinMaxDuality(c *lsap.Matrix, baseCost float64, rng *rand.Rand) (*lsap.Matrix, float64) {
	minV := math.Inf(1)
	for _, v := range c.Data {
		if v < minV {
			minV = v
		}
	}
	if math.IsInf(minV, 1) {
		minV = 0
	}
	return c.Negate().Negate(), baseCost - float64(c.N)*minV
}

// derivePadDummy: padding k dummy rows and columns at max+1 forces the
// optimum to match dummies to dummies (any real↔dummy pairing can be
// swapped into real↔real + dummy↔dummy without increasing cost, and
// pad > every real entry makes the swap strictly improving), so the
// optimal cost grows by exactly k·(max+1).
func derivePadDummy(c *lsap.Matrix, baseCost float64, rng *rand.Rand) (*lsap.Matrix, float64) {
	maxV := 0.0
	for _, v := range c.Data {
		if v > maxV {
			maxV = v
		}
	}
	k := 1 + rng.Intn(2)
	pad := maxV + 1
	return c.PadTo(c.N+k, pad), baseCost + float64(k)*pad
}

// CheckProperty solves the derived instance with s and asserts the
// metamorphic cost relation, then certifies the derived result with ct
// — so a solver cannot pass by returning a cost that happens to match
// while its matching is invalid.
func CheckProperty(s lsap.Solver, p Property, c *lsap.Matrix, baseCost float64, ct *Certifier, rng *rand.Rand) error {
	derived, want, err := deriveChecked(p, c, baseCost, rng)
	if err != nil {
		return err
	}
	sol, err := s.Solve(derived)
	if err != nil {
		return fmt.Errorf("%s on %s-derived instance: %w", s.Name(), p.Name, err)
	}
	if err := ct.Certify(derived, sol); err != nil {
		return fmt.Errorf("%s on %s-derived instance: %w", s.Name(), p.Name, err)
	}
	if math.Abs(sol.Cost-want) > ct.tol()*(1+math.Abs(want)) {
		return fmt.Errorf("%s violates %s: derived optimal cost %g, relation requires %g",
			s.Name(), p.Name, sol.Cost, want)
	}
	return nil
}

// deriveChecked wraps Derive and re-checks the expected cost is finite.
func deriveChecked(p Property, c *lsap.Matrix, baseCost float64, rng *rand.Rand) (*lsap.Matrix, float64, error) {
	derived, want := p.Derive(c, baseCost, rng)
	if math.IsNaN(want) || math.IsInf(want, 0) {
		return nil, 0, fmt.Errorf("conformance: property %s derived non-finite expected cost %g", p.Name, want)
	}
	return derived, want, nil
}
