package conformance

import (
	"errors"
	"fmt"
	"math/rand"

	"hunipu/internal/core"
	"hunipu/internal/cpuhung"
	"hunipu/internal/fastha"
	"hunipu/internal/faultinject"
	"hunipu/internal/ipuauction"
	"hunipu/internal/lsap"
	"hunipu/internal/shard"
)

// ChaosEntry is one solver that accepts a fault injector. Chaos runs
// are the robustness counterpart of the conformance grid: instead of
// asking "do all solvers agree?", they ask "under injected faults,
// does every run end in either a certified optimum or a typed error?"
// — the invariant being that a fault never silently corrupts a result.
type ChaosEntry struct {
	// Name matches the solver's Name().
	Name string
	// New builds a solver wired to the injector. Retries > 0 turns on
	// checkpoint recovery where the solver supports it.
	New func(inj faultinject.Injector, retries int) (lsap.Solver, error)
}

// ChaosRegistry returns every solver that accepts fault injection.
// The CPU baselines run natively (nothing to inject) and the GPU
// auction predates the injection hooks, so they are absent by design.
func ChaosRegistry() []ChaosEntry {
	return []ChaosEntry{
		{
			Name: "HunIPU",
			New: func(inj faultinject.Injector, retries int) (lsap.Solver, error) {
				return core.New(core.Options{Config: smallIPU(), Fault: inj, MaxRetries: retries})
			},
		},
		{
			Name: "HunIPU-nocompress",
			New: func(inj faultinject.Injector, retries int) (lsap.Solver, error) {
				return core.New(core.Options{
					Config: smallIPU(), DisableCompression: true, Fault: inj, MaxRetries: retries,
				})
			},
		},
		{
			Name: "HunIPU-2D",
			New: func(inj faultinject.Injector, retries int) (lsap.Solver, error) {
				return core.New(core.Options{Config: smallIPU(), Use2D: true, Fault: inj, MaxRetries: retries})
			},
		},
		{
			Name: "HunIPU-shard2",
			New: func(inj faultinject.Injector, retries int) (lsap.Solver, error) {
				return shard.New(shard.Options{
					Config: smallIPU(), Devices: 2, Fault: inj, MaxRetries: retries, Cache: shard.NewPlanCache(),
				})
			},
		},
		{
			Name: "HunIPU-shard4",
			New: func(inj faultinject.Injector, retries int) (lsap.Solver, error) {
				return shard.New(shard.Options{
					Config: smallIPU(), Devices: 4, Fault: inj, MaxRetries: retries, Cache: shard.NewPlanCache(),
				})
			},
		},
		{
			Name: "FastHA",
			New: func(inj faultinject.Injector, retries int) (lsap.Solver, error) {
				s, err := fastha.New(fastha.Options{Fault: inj})
				if err != nil {
					return nil, err
				}
				return paddedFastHA{s}, nil
			},
		},
		{
			Name: "IPU-Auction",
			New: func(inj faultinject.Injector, retries int) (lsap.Solver, error) {
				return ipuauction.New(ipuauction.Options{Config: smallIPU(), Fault: inj, MaxRetries: retries})
			},
		},
	}
}

// ChaosConfig parameterises a chaos sweep.
type ChaosConfig struct {
	// Schedules is how many random fault schedules to draw per solver.
	Schedules int
	// Sizes are the instance sizes each schedule is run against.
	Sizes []int
	// Retries is the recovery budget handed to each solver.
	Retries int
	// Seed makes the sweep reproducible end to end: it drives both the
	// drawn schedules and the generated instances.
	Seed int64
	// Tol as in Config.
	Tol float64
}

// DefaultChaosConfig draws enough schedules to cover every fault
// class, trigger shape, and phase filter against each solver.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{Schedules: 60, Sizes: []int{8, 13}, Retries: 3, Seed: 1}
}

// ChaosOutcome classifies one chaos run.
type ChaosOutcome int

// Chaos run classifications.
const (
	// ChaosClean: no fault fired; the run must be certified-optimal.
	ChaosClean ChaosOutcome = iota
	// ChaosSurvived: faults fired and the solver still produced a
	// certified optimum (recovery absorbed them).
	ChaosSurvived
	// ChaosTypedError: the run failed with a typed fault or a
	// context error — the accepted failure mode.
	ChaosTypedError
	// ChaosViolation: the invariant broke — a wrong or uncertified
	// answer, or an untyped error after injection.
	ChaosViolation
)

// ChaosReport aggregates a sweep.
type ChaosReport struct {
	Runs       int
	Clean      int
	Survived   int
	TypedError int
	// Violations carry a reproducer: solver, schedule spec, size.
	Violations []string
}

// RunChaos sweeps random fault schedules over every chaos-capable
// solver and enforces the robustness invariant: every run ends in a
// certified optimum or a typed error, never a silently wrong answer.
func RunChaos(cfg ChaosConfig) (*ChaosReport, error) {
	if cfg.Schedules <= 0 {
		cfg = DefaultChaosConfig()
	}
	tol := cfg.Tol
	if tol == 0 {
		tol = 1e-9
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ct := NewCertifier()
	ct.Tol = tol
	ref := cpuhung.JV{}
	report := &ChaosReport{}

	// One instance per size, fault-free reference cost certified once.
	type inst struct {
		m    *lsap.Matrix
		cost float64
	}
	var instances []inst
	for _, n := range cfg.Sizes {
		m := genUniform(rand.New(rand.NewSource(rng.Int63())), n)
		sol, err := ref.Solve(m)
		if err != nil {
			return nil, fmt.Errorf("chaos: reference solve n=%d: %w", n, err)
		}
		if err := ct.Certify(m, sol); err != nil {
			return nil, fmt.Errorf("chaos: reference certificate n=%d: %w", n, err)
		}
		instances = append(instances, inst{m: m, cost: sol.Cost})
	}

	schedules := make([]*faultinject.Schedule, cfg.Schedules)
	for i := range schedules {
		schedules[i] = faultinject.RandomSchedule(rng)
	}

	for _, e := range ChaosRegistry() {
		for _, sched := range schedules {
			for _, in := range instances {
				// Each run gets a private clone: fire counters are
				// per-run state, the spec is the shared plan.
				clone := sched.Clone()
				s, err := e.New(clone, cfg.Retries)
				if err != nil {
					return nil, fmt.Errorf("chaos: %s constructor: %w", e.Name, err)
				}
				report.Runs++
				sol, err := s.Solve(in.m.Clone())
				switch outcome := classifyChaos(ct, in.m, in.cost, tol, sol, err, clone.Fired()); outcome {
				case ChaosClean:
					report.Clean++
				case ChaosSurvived:
					report.Survived++
				case ChaosTypedError:
					report.TypedError++
				default:
					report.Violations = append(report.Violations, fmt.Sprintf(
						"%s n=%d schedule %q: err=%v", e.Name, in.m.N, sched.String(), err))
				}
			}
		}
	}
	return report, nil
}

// classifyChaos applies the invariant to one run.
func classifyChaos(ct *Certifier, m *lsap.Matrix, want, tol float64, sol *lsap.Solution, err error, fired int64) ChaosOutcome {
	if err != nil {
		var fe *faultinject.FaultError
		if errors.As(err, &fe) {
			return ChaosTypedError
		}
		return ChaosViolation
	}
	if err := ct.Certify(m, sol); err != nil {
		return ChaosViolation
	}
	if diff := sol.Cost - want; diff > tol*(1+want) || diff < -tol*(1+want) {
		return ChaosViolation
	}
	if fired > 0 {
		return ChaosSurvived
	}
	return ChaosClean
}
