package conformance

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"hunipu/internal/cpuhung"
)

// Config parameterises a conformance run.
type Config struct {
	// Sizes are the instance sizes to generate; the defaults mix
	// powers of two with off-by-one neighbours, FastHA's padding
	// boundary being a classic divergence site.
	Sizes []int
	// Trials is the number of instances per (family, size) cell.
	Trials int
	// Seed makes the whole run reproducible.
	Seed int64
	// Tol is the cost-comparison and certificate tolerance; zero
	// means 1e-9.
	Tol float64
}

// DefaultConfig is the full cross-check grid.
func DefaultConfig() Config {
	return Config{
		Sizes:  []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 17},
		Trials: 2,
		Seed:   1,
	}
}

// ShortConfig is the -short grid: same families and solvers, fewer and
// smaller instances.
func ShortConfig() Config {
	return Config{
		Sizes:  []int{1, 2, 3, 5, 8, 9},
		Trials: 1,
		Seed:   1,
	}
}

// Divergence is one observed disagreement or failure, with everything
// needed to reproduce it.
type Divergence struct {
	Solver string
	Family string
	N      int
	Seed   int64
	Detail string
}

func (d Divergence) String() string {
	return fmt.Sprintf("%s on %s n=%d seed=%d: %s", d.Solver, d.Family, d.N, d.Seed, d.Detail)
}

// Cell aggregates one solver × family pair.
type Cell struct {
	Solves      int
	Certified   int
	Divergences int
}

// Report is the outcome of a conformance run.
type Report struct {
	Solvers     []string
	Families    []string
	Cells       map[string]*Cell // key: solver + "/" + family
	Divergences []Divergence
}

func (r *Report) cell(solver, family string) *Cell {
	key := solver + "/" + family
	c := r.Cells[key]
	if c == nil {
		c = &Cell{}
		r.Cells[key] = c
	}
	return c
}

// Table renders the per-solver divergence table: one row per solver,
// one column per family, each cell "certified/solves" with a trailing
// "!" when the cell saw divergences.
func (r *Report) Table() string {
	var b strings.Builder
	w := 0
	for _, s := range r.Solvers {
		if len(s) > w {
			w = len(s)
		}
	}
	fmt.Fprintf(&b, "%-*s", w, "solver")
	for _, f := range r.Families {
		fmt.Fprintf(&b, "  %12s", f)
	}
	b.WriteByte('\n')
	for _, s := range r.Solvers {
		fmt.Fprintf(&b, "%-*s", w, s)
		for _, f := range r.Families {
			c := r.Cells[s+"/"+f]
			cell := "-"
			if c != nil {
				cell = fmt.Sprintf("%d/%d", c.Certified, c.Solves)
				if c.Divergences > 0 {
					cell += "!"
				}
			}
			fmt.Fprintf(&b, "  %12s", cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Run cross-checks every registered solver on every generator family:
// each result must carry or earn a dual certificate and agree with the
// certified reference cost. Solver checks run concurrently (one
// goroutine per registry entry), which doubles as the -race exercise
// for the solvers' internal state.
func Run(cfg Config) (*Report, error) {
	if len(cfg.Sizes) == 0 {
		cfg = DefaultConfig()
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 1
	}
	tol := cfg.Tol
	if tol == 0 {
		tol = 1e-9
	}

	families := Families()
	instances := Instances(families, cfg.Sizes, cfg.Trials, cfg.Seed)

	// Reference pass: certify the JV optimum for every instance once;
	// the certified cost is the cross-check target.
	ct := NewCertifier()
	ct.Tol = tol
	refCost := make([]float64, len(instances))
	ref := cpuhung.JV{}
	for i, inst := range instances {
		sol, err := ref.Solve(inst.Matrix)
		if err != nil {
			return nil, fmt.Errorf("conformance: reference solve %s n=%d seed=%d: %w",
				inst.Family, inst.N, inst.Seed, err)
		}
		if err := ct.Certify(inst.Matrix, sol); err != nil {
			return nil, fmt.Errorf("conformance: reference certificate %s n=%d seed=%d: %w",
				inst.Family, inst.N, inst.Seed, err)
		}
		refCost[i] = sol.Cost
	}

	entries := Registry()
	report := &Report{Cells: map[string]*Cell{}}
	for _, e := range entries {
		report.Solvers = append(report.Solvers, e.Name)
	}
	for _, f := range families {
		report.Families = append(report.Families, f.Name)
	}

	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	record := func(e Entry, inst Instance, certified bool, detail string) {
		mu.Lock()
		defer mu.Unlock()
		c := report.cell(e.Name, inst.Family)
		c.Solves++
		if certified {
			c.Certified++
		}
		if detail != "" {
			c.Divergences++
			report.Divergences = append(report.Divergences, Divergence{
				Solver: e.Name, Family: inst.Family, N: inst.N, Seed: inst.Seed, Detail: detail,
			})
		}
	}

	for _, e := range entries {
		wg.Add(1)
		go func(e Entry) {
			defer wg.Done()
			s, err := e.New()
			if err != nil {
				mu.Lock()
				report.Divergences = append(report.Divergences, Divergence{
					Solver: e.Name, Detail: fmt.Sprintf("constructor failed: %v", err),
				})
				mu.Unlock()
				return
			}
			for i, inst := range instances {
				if e.MaxN > 0 && inst.N > e.MaxN {
					continue
				}
				// Solvers get a private copy; mutating the shared input
				// would corrupt the other goroutines' cross-check.
				input := inst.Matrix.Clone()
				sol, err := s.Solve(input)
				if err != nil {
					record(e, inst, false, fmt.Sprintf("solve failed: %v", err))
					continue
				}
				for k, v := range input.Data {
					if v != inst.Matrix.Data[k] {
						record(e, inst, false, "solver mutated its input matrix")
						break
					}
				}
				if err := ct.Certify(inst.Matrix, sol); err != nil {
					record(e, inst, false, fmt.Sprintf("certificate failed: %v", err))
					continue
				}
				want := refCost[i]
				if math.Abs(sol.Cost-want) > tol*(1+math.Abs(want)) {
					record(e, inst, true, fmt.Sprintf("optimal cost %g, reference %g", sol.Cost, want))
					continue
				}
				record(e, inst, true, "")
			}
		}(e)
	}
	wg.Wait()

	sort.Slice(report.Divergences, func(i, j int) bool {
		a, b := report.Divergences[i], report.Divergences[j]
		if a.Solver != b.Solver {
			return a.Solver < b.Solver
		}
		if a.Family != b.Family {
			return a.Family < b.Family
		}
		return a.Seed < b.Seed
	})
	return report, nil
}
