package conformance

import (
	"runtime"
	"testing"
	"time"
)

// CheckNoLeak asserts the goroutine count settles back to the
// baseline captured before the scenario ran; a cancelled or failed
// solve must not strand workers or timers. Shared by the per-device
// cancellation tests here, the public-API concurrency suite, and the
// serving layer's drain tests.
func CheckNoLeak(t testing.TB, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after",
				before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
