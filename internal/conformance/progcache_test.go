package conformance

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"hunipu/internal/core"
	"hunipu/internal/faultinject"
	"hunipu/internal/lsap"
	"hunipu/internal/poplar"
)

// TestSingleFlightCompilation is the satellite race test: K goroutines
// solving the same shape concurrently through one shared program cache
// must observe exactly one compilation (the cache's build counter), and
// every goroutine must still get a certified-optimal result. Run under
// -race this also proves the memoized single-flight path is data-race
// free. Goroutine-leak checked via CheckNoLeak.
func TestSingleFlightCompilation(t *testing.T) {
	const workers = 8
	before := runtime.NumGoroutine()

	cache := core.NewProgramCache(4)
	opts := core.Options{
		Config: smallIPU(),
		Cache:  cache,
		Guard:  poplar.GuardInvariants, // certified results, not just optimal ones
	}
	rng := rand.New(rand.NewSource(41))
	m := genUniform(rng, 16)
	ct := NewCertifier()

	var wg sync.WaitGroup
	sols := make([]*lsap.Solution, workers)
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := core.New(opts)
			if err != nil {
				errs[i] = err
				return
			}
			sols[i], errs[i] = s.Solve(m.Clone())
		}(i)
	}
	wg.Wait()
	CheckNoLeak(t, before)

	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if err := ct.Certify(m, sols[i]); err != nil {
			t.Fatalf("worker %d result not certified: %v", i, err)
		}
	}
	st := cache.Stats()
	if st.Builds != 1 {
		t.Fatalf("Builds = %d with %d concurrent same-shape solvers, want exactly 1 (single-flight)", st.Builds, workers)
	}
	if st.Hits+st.Misses != workers {
		t.Errorf("Hits+Misses = %d+%d, want %d total acquisitions", st.Hits, st.Misses, workers)
	}
	if st.InFlight != 0 {
		t.Errorf("InFlight = %d after all solves returned, want 0", st.InFlight)
	}
}

// TestSingleFlightManyShapes interleaves concurrent solvers across two
// shapes: single-flight must hold per fingerprint, not globally.
func TestSingleFlightManyShapes(t *testing.T) {
	const perShape = 4
	cache := core.NewProgramCache(4)
	opts := core.Options{Config: smallIPU(), Cache: cache}
	rng := rand.New(rand.NewSource(43))
	ms := []*lsap.Matrix{genUniform(rng, 12), genUniform(rng, 15)}
	ct := NewCertifier()

	var wg sync.WaitGroup
	errCh := make(chan error, perShape*len(ms))
	for _, m := range ms {
		for i := 0; i < perShape; i++ {
			wg.Add(1)
			go func(m *lsap.Matrix) {
				defer wg.Done()
				s, err := core.New(opts)
				if err != nil {
					errCh <- err
					return
				}
				sol, err := s.Solve(m.Clone())
				if err != nil {
					errCh <- err
					return
				}
				errCh <- ct.Certify(m, sol)
			}(m)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
	if st := cache.Stats(); st.Builds != int64(len(ms)) {
		t.Fatalf("Builds = %d for %d distinct shapes, want one build each", st.Builds, len(ms))
	}
}

// TestWarmCacheChaosSweep is the satellite cache-under-chaos test: a
// warm cache must preserve the repo's headline reliability invariant —
// every solve ends in a certified-optimal solution or a typed error,
// never a silently wrong answer — while programs are being reused (and
// zero-state recycled) across faulting and clean runs.
func TestWarmCacheChaosSweep(t *testing.T) {
	// Capacity covers the clean shape plus every per-schedule fingerprint
	// so the post-sweep warm assertion below cannot be defeated by LRU.
	const schedules = 12
	cache := core.NewProgramCache(schedules + 2)
	rng := rand.New(rand.NewSource(47))
	m := genUniform(rng, 12)
	ct := NewCertifier()

	// Warm the clean-path program once.
	clean, err := core.New(core.Options{Config: smallIPU(), Guard: poplar.GuardInvariants, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := clean.Solve(m.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if err := ct.Certify(m, sol); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < schedules; i++ {
		sched := faultinject.RandomSilentSchedule(rand.New(rand.NewSource(int64(100 + i))))
		// The same injector is reused for several solves so its program —
		// keyed by injector identity — goes warm and dirty-reuse under
		// chaos is exercised, exactly like a serving layer's fault drill.
		s, err := core.New(core.Options{
			Config: smallIPU(), Guard: poplar.GuardInvariants,
			Fault: sched, MaxRetries: 2, Cache: cache,
		})
		if err != nil {
			t.Fatal(err)
		}
		for run := 0; run < 3; run++ {
			sol, err := s.Solve(m.Clone())
			if err != nil {
				var ce *faultinject.CorruptionError
				var fe *faultinject.FaultError
				if !errors.As(err, &ce) && !errors.As(err, &fe) {
					t.Fatalf("schedule %d run %d: untyped error %v", i, run, err)
				}
				continue
			}
			if cerr := ct.Certify(m, sol); cerr != nil {
				t.Fatalf("schedule %d run %d: uncertified result from warm cache: %v", i, run, cerr)
			}
		}
	}

	// Clean-path solves after the sweep still hit their warm program and
	// still certify.
	for i := 0; i < 2; i++ {
		r, err := clean.SolveDetailed(m.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if !r.Cached {
			t.Errorf("post-sweep clean solve %d rebuilt its program; chaos must not evict the clean shape", i)
		}
		if err := ct.Certify(m, r.Solution); err != nil {
			t.Fatal(err)
		}
	}
}
