package conformance

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"hunipu/internal/core"
	"hunipu/internal/cpuhung"
	"hunipu/internal/lsap"
)

// maxFuzzN bounds fuzzed instance sizes: large enough to reach the
// multi-tile and padding paths, small enough for high fuzz throughput.
const maxFuzzN = 12

// fuzzMatrix parses the lsap text format (sharing FuzzReadMatrix's
// corpus shape) and normalises the instance for differential solving:
// sizes capped at maxFuzzN, every entry rounded to an integer and
// clamped to ±10^9 so all solvers — including the ε-scaling auctions —
// are exact.
func fuzzMatrix(in string) (*lsap.Matrix, bool) {
	m, err := lsap.ReadMatrix(strings.NewReader(in))
	if err != nil || m.N == 0 || m.N > maxFuzzN {
		return nil, false
	}
	for i, v := range m.Data {
		if math.IsNaN(v) {
			v = 0
		}
		v = math.Round(v)
		if v > 1e9 {
			v = 1e9
		}
		if v < -1e9 {
			v = -1e9
		}
		m.Data[i] = v
	}
	return m, true
}

// hunipuFuzz is a process-wide HunIPU instance for the fuzz targets:
// the compiled-graph cache is per size, so fuzzing pays compilation
// once per distinct n instead of once per input.
var hunipuFuzz = struct {
	once sync.Once
	s    *core.Solver
	err  error
}{}

func hunipuForFuzz() (*core.Solver, error) {
	hunipuFuzz.once.Do(func() {
		hunipuFuzz.s, hunipuFuzz.err = core.New(core.Options{Config: smallIPU()})
	})
	return hunipuFuzz.s, hunipuFuzz.err
}

// FuzzDifferentialSolve cross-checks the CPU solvers and HunIPU on
// arbitrary parsed matrices: all must agree on the optimal cost, and
// every result must pass the dual-certificate oracle. Seeds reuse the
// FuzzReadMatrix corpus format.
func FuzzDifferentialSolve(f *testing.F) {
	f.Add("2\n1 2\n3 4\n")
	f.Add("3\n2 2 2\n2 2 2\n2 2 2\n")                // total tie degeneracy
	f.Add("3\n1 2 3\n1 2 3\n5 5 5\n")                // degenerate rows
	f.Add("4\n1 1 2 2\n2 1 1 2\n2 2 1 1\n1 2 2 1\n") // many optimal matchings
	f.Add("2\n1000000000 1\n1 1000000000\n")         // near-inf magnitudes
	f.Add("3\n5 6 7\n8 9 10\n11 11 11\n")            // rectangular-padding shape
	f.Add("1\n-7\n")                                 // negative costs
	f.Add("5\n3 1 4 1 5\n9 2 6 5 3\n5 8 9 7 9\n3 2 3 8 4\n6 2 6 4 3\n")
	f.Fuzz(func(t *testing.T, in string) {
		m, ok := fuzzMatrix(in)
		if !ok {
			return
		}
		ct := NewCertifier()
		ref, err := (cpuhung.JV{}).Solve(m)
		if err != nil {
			t.Fatalf("JV failed on fuzzed matrix: %v", err)
		}
		if err := ct.Certify(m, ref); err != nil {
			t.Fatalf("JV certificate: %v", err)
		}
		solvers := []lsap.Solver{cpuhung.ParallelJV{}, cpuhung.Munkres{}, cpuhung.Auction{}}
		if m.N <= lsap.MaxBruteForceN {
			solvers = append(solvers, lsap.BruteForce{})
		}
		if hs, err := hunipuForFuzz(); err == nil {
			solvers = append(solvers, hs)
		}
		for _, s := range solvers {
			sol, err := s.Solve(m.Clone())
			if err != nil {
				t.Fatalf("%s failed where JV succeeded: %v", s.Name(), err)
			}
			if err := ct.Certify(m, sol); err != nil {
				t.Fatalf("%s certificate: %v", s.Name(), err)
			}
			if sol.Cost != ref.Cost {
				t.Fatalf("%s cost %g, JV cost %g", s.Name(), sol.Cost, ref.Cost)
			}
		}
	})
}

// FuzzMetamorphic applies a fuzzer-chosen metamorphic property to a
// fuzzed matrix and checks the cost relation on both a certifying
// solver (JV) and a non-certifying one (Munkres, certified through the
// borrowed-dual bound).
func FuzzMetamorphic(f *testing.F) {
	f.Add("2\n1 2\n3 4\n", uint8(0))
	f.Add("3\n2 2 2\n2 2 2\n2 2 2\n", uint8(3))
	f.Add("4\n1 1 2 2\n2 1 1 2\n2 2 1 1\n1 2 2 1\n", uint8(5))
	f.Add("2\n1000000000 1\n1 1000000000\n", uint8(4))
	f.Add("3\n1 2 3\n1 2 3\n5 5 5\n", uint8(6))
	f.Fuzz(func(t *testing.T, in string, sel uint8) {
		m, ok := fuzzMatrix(in)
		if !ok {
			return
		}
		props := Properties()
		p := props[int(sel)%len(props)]
		ct := NewCertifier()
		base, err := (cpuhung.JV{}).Solve(m)
		if err != nil {
			t.Fatalf("JV failed on fuzzed matrix: %v", err)
		}
		if err := ct.Certify(m, base); err != nil {
			t.Fatalf("base certificate: %v", err)
		}
		rng := rand.New(rand.NewSource(int64(sel) + int64(m.N)<<8))
		for _, s := range []lsap.Solver{cpuhung.JV{}, cpuhung.Munkres{}} {
			if err := CheckProperty(s, p, m, base.Cost, ct, rand.New(rand.NewSource(rng.Int63()))); err != nil {
				t.Fatal(err)
			}
		}
	})
}
