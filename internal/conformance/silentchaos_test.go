package conformance

import (
	"os"
	"testing"

	"hunipu/internal/poplar"
)

// silentGuard honours SILENT_GUARD so CI can sweep the silent schedules
// across every active guard policy. Off is rejected: it would disable
// the defense under test (the Off control lives in
// TestSilentChaosGuardOffWrongAnswerEscapes).
func silentGuard(t *testing.T) poplar.GuardPolicy {
	t.Helper()
	v := os.Getenv("SILENT_GUARD")
	if v == "" {
		return poplar.GuardInvariants
	}
	p, err := poplar.ParseGuardPolicy(v)
	if err != nil {
		t.Fatalf("SILENT_GUARD=%q: %v", v, err)
	}
	if p == poplar.GuardOff {
		t.Fatalf("SILENT_GUARD=off disables the defense under test")
	}
	return p
}

// TestSilentChaosInvariantsCertifiedOrTyped is the SDC acceptance
// sweep: ≥50 seeded silent schedules per guard-capable solver at
// GuardInvariants (or the SILENT_GUARD policy in CI's matrix), and
// every single run ends certified-optimal or as a typed error — a
// silently wrong answer never escapes.
func TestSilentChaosInvariantsCertifiedOrTyped(t *testing.T) {
	cfg := DefaultSilentChaosConfig()
	cfg.Guard = silentGuard(t)
	cfg.Seed = chaosSeed(t)
	if cfg.Schedules < 50 {
		t.Fatalf("config sweeps %d schedules, acceptance floor is 50", cfg.Schedules)
	}
	rep, err := RunSilentChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Schedules * len(cfg.Sizes) * len(SilentChaosRegistry())
	if rep.Runs != want {
		t.Fatalf("Runs = %d, want %d", rep.Runs, want)
	}
	for _, v := range rep.Wrong {
		t.Errorf("wrong answer escaped the guard: %s", v)
	}
	for _, v := range rep.Untyped {
		t.Errorf("untyped failure under guard: %s", v)
	}
	if rep.Survived+rep.Corruptions == 0 {
		t.Fatalf("sweep never exercised the guard: %+v", rep)
	}
	if rep.Corruptions > 0 && rep.MaxLatency < 0 {
		t.Fatalf("negative detection latency: %+v", rep)
	}
	t.Logf("silent chaos seed=%d guard=%v: %d runs, %d clean, %d survived, %d corruption errors (max latency %d), %d fault errors",
		cfg.Seed, cfg.Guard, rep.Runs, rep.Clean, rep.Survived, rep.Corruptions, rep.MaxLatency, rep.TypedFaults)
}

// TestSilentChaosDeterministic: the same seed must replay the exact
// same silent sweep, or SILENT_GUARD/CHAOS_SEED reproducers are
// worthless.
func TestSilentChaosDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("silent chaos replay is covered by the full run")
	}
	cfg := SilentChaosConfig{
		Schedules: 50, Sizes: []int{10}, Retries: 2,
		Guard: poplar.GuardInvariants, Seed: 42,
	}
	a, err := RunSilentChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSilentChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Runs != b.Runs || a.Clean != b.Clean || a.Survived != b.Survived ||
		a.Corruptions != b.Corruptions || a.TypedFaults != b.TypedFaults {
		t.Fatalf("same seed, different sweeps: %+v vs %+v", a, b)
	}
}

// TestSilentChaosGuardOffWrongAnswerEscapes proves the attack is real:
// with the guard off, at least one seeded silent schedule yields a
// wrong answer that only test-side certification catches. This is the
// control experiment justifying the guard's existence.
func TestSilentChaosGuardOffWrongAnswerEscapes(t *testing.T) {
	cfg := DefaultSilentChaosConfig()
	cfg.Guard = poplar.GuardOff
	rep, err := RunSilentChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Wrong) == 0 {
		t.Fatalf("no silent wrong answer escaped with the guard off — the fault classes are not corrupting live state (%+v)", rep)
	}
	t.Logf("silent chaos @off: %d/%d runs returned a wrong answer caught only by test-side certification",
		len(rep.Wrong), rep.Runs)
}
