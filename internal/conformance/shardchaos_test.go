package conformance

import "testing"

// TestShardChaosInvariant is the fabric robustness acceptance gate:
// ≥50 random device-loss / link-loss schedules per fabric size in
// {2, 4}, and every run must end in a certified optimum or a typed
// error — a dying chip must never yield a silently wrong answer.
func TestShardChaosInvariant(t *testing.T) {
	cfg := DefaultShardChaosConfig()
	cfg.Seed = chaosSeed(t)
	if testing.Short() {
		cfg.Sizes = []int{8}
	}
	if cfg.Schedules < 50 {
		t.Fatalf("config sweeps %d schedules per fabric, acceptance floor is 50", cfg.Schedules)
	}
	rep, err := RunShardChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	t.Logf("shard chaos seed=%d: %d runs, %d clean, %d survived, %d typed errors; %d devices lost, %d reshards, %d rollbacks",
		cfg.Seed, rep.Runs, rep.Clean, rep.Survived, rep.TypedError,
		rep.DevicesLost, rep.Reshards, rep.Rollbacks)
	// A sweep that never kills a chip, never re-shards, or never rolls
	// back means the schedule generator or the recovery machinery died.
	if rep.DevicesLost == 0 {
		t.Error("no chip was ever lost: device-loss injection never exercised")
	}
	if rep.Reshards == 0 {
		t.Error("no re-sharding happened: survivors never absorbed a loss")
	}
	if rep.Rollbacks == 0 {
		t.Error("no rollback happened: transient recovery never exercised")
	}
	if rep.Survived == 0 {
		t.Error("no run survived an injected fault")
	}
	if rep.TypedError == 0 {
		t.Error("no run failed typed: fabric-collapse path never exercised")
	}
}

// TestShardChaosDeterministic: the same seed must replay the same
// sweep, or CHAOS_SEED reproducers are worthless.
func TestShardChaosDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("shard chaos replay is covered by the full run")
	}
	cfg := ShardChaosConfig{Schedules: 50, Fabrics: []int{2}, Sizes: []int{8}, Retries: 2, Seed: 42}
	a, err := RunShardChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunShardChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Runs != b.Runs || a.Clean != b.Clean || a.Survived != b.Survived ||
		a.TypedError != b.TypedError || a.DevicesLost != b.DevicesLost ||
		a.Reshards != b.Reshards || a.Rollbacks != b.Rollbacks {
		t.Fatalf("same seed, different sweeps: %+v vs %+v", a, b)
	}
}
