package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDenseBasics(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(0, 1, 5)
	m.Set(1, 2, -2)
	if m.At(0, 1) != 5 || m.At(1, 2) != -2 {
		t.Fatal("At/Set broken")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Fatal("Clone aliases")
	}
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(1, 0) != 5 {
		t.Fatal("transpose broken")
	}
}

func TestMulKnown(t *testing.T) {
	a := &Dense{Rows: 2, Cols: 2, Data: []float64{1, 2, 3, 4}}
	b := &Dense{Rows: 2, Cols: 2, Data: []float64{5, 6, 7, 8}}
	c := Mul(a, b)
	want := []float64{19, 22, 43, 50}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("Mul = %v, want %v", c.Data, want)
		}
	}
}

func TestMulVec(t *testing.T) {
	a := &Dense{Rows: 2, Cols: 3, Data: []float64{1, 0, 2, 0, 3, 0}}
	got := MulVec(a, []float64{1, 2, 3})
	if got[0] != 7 || got[1] != 6 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mul(NewDense(2, 3), NewDense(2, 3))
}

func TestIsSymmetric(t *testing.T) {
	s := &Dense{Rows: 2, Cols: 2, Data: []float64{1, 2, 2, 3}}
	if !s.IsSymmetric(0) {
		t.Fatal("symmetric matrix rejected")
	}
	a := &Dense{Rows: 2, Cols: 2, Data: []float64{1, 2, 2.1, 3}}
	if a.IsSymmetric(0.01) {
		t.Fatal("asymmetric matrix accepted")
	}
	if NewDense(2, 3).IsSymmetric(1) {
		t.Fatal("non-square accepted")
	}
}

func TestEigSymDiagonal(t *testing.T) {
	a := NewDense(3, 3)
	a.Set(0, 0, 3)
	a.Set(1, 1, 1)
	a.Set(2, 2, 2)
	lambda, v, err := EigSym(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i, w := range want {
		if !almostEq(lambda[i], w, 1e-12) {
			t.Fatalf("λ = %v, want %v", lambda, want)
		}
	}
	// Eigenvectors must be signed unit basis vectors.
	for c := 0; c < 3; c++ {
		var norm float64
		for r := 0; r < 3; r++ {
			norm += v.At(r, c) * v.At(r, c)
		}
		if !almostEq(norm, 1, 1e-12) {
			t.Fatalf("eigvec %d not unit", c)
		}
	}
}

func TestEigSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := &Dense{Rows: 2, Cols: 2, Data: []float64{2, 1, 1, 2}}
	lambda, _, err := EigSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(lambda[0], 1, 1e-12) || !almostEq(lambda[1], 3, 1e-12) {
		t.Fatalf("λ = %v, want [1 3]", lambda)
	}
}

func TestEigSymRejectsBadInput(t *testing.T) {
	if _, _, err := EigSym(NewDense(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
	a := NewDense(2, 2)
	a.Set(0, 1, 1)
	if _, _, err := EigSym(a); err == nil {
		t.Fatal("asymmetric accepted")
	}
}

func TestEigSymEmpty(t *testing.T) {
	lambda, v, err := EigSym(NewDense(0, 0))
	if err != nil || len(lambda) != 0 || v.Rows != 0 {
		t.Fatalf("empty eig: %v %v %v", lambda, v, err)
	}
}

// reconstruct checks a ≈ V diag(λ) Vᵀ.
func reconstruct(lambda []float64, v *Dense) *Dense {
	n := v.Rows
	d := NewDense(n, n)
	for i := range lambda {
		d.Set(i, i, lambda[i])
	}
	return Mul(Mul(v, d), v.T())
}

func TestEigSymReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 5, 20, 60} {
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		lambda, v, err := EigSym(a)
		if err != nil {
			t.Fatal(err)
		}
		got := reconstruct(lambda, v)
		for i := range a.Data {
			if !almostEq(got.Data[i], a.Data[i], 1e-8) {
				t.Fatalf("n=%d: reconstruction error at %d: %g vs %g", n, i, got.Data[i], a.Data[i])
			}
		}
		// Ascending eigenvalues.
		for i := 1; i < n; i++ {
			if lambda[i] < lambda[i-1] {
				t.Fatalf("eigenvalues not sorted: %v", lambda)
			}
		}
		// Orthonormal columns.
		vtv := Mul(v.T(), v)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if !almostEq(vtv.At(i, j), want, 1e-8) {
					t.Fatalf("VᵀV not identity at (%d,%d): %g", i, j, vtv.At(i, j))
				}
			}
		}
	}
}

// Property: the trace equals the eigenvalue sum (random adjacency-like
// 0/1 symmetric matrices, the GRAMPA input family).
func TestEigSymTraceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(24)
		a := NewDense(n, n)
		trace := 0.0
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := float64(rng.Intn(2))
				a.Set(i, j, v)
				a.Set(j, i, v)
				if i == j {
					trace += v
				}
			}
		}
		lambda, _, err := EigSym(a)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, l := range lambda {
			sum += l
		}
		return almostEq(sum, trace, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEigSym(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 128
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := EigSym(a); err != nil {
			b.Fatal(err)
		}
	}
}
