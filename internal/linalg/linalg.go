// Package linalg provides the dense linear algebra the GRAMPA graph-
// alignment substrate needs: row-major matrices, multiplication, and a
// symmetric eigendecomposition (Householder tridiagonalisation followed
// by the implicit-shift QL iteration, the classic EISPACK tred2/tql2
// pair), all in pure Go.
package linalg

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// NewDense returns a zeroed r×c matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic("linalg: negative dimension")
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// At returns M[i][j].
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns M[i][j] = v.
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns the backing slice of row i.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose.
func (m *Dense) T() *Dense {
	t := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// Mul returns a·b.
func Mul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns a·x.
func MulVec(a *Dense, x []float64) []float64 {
	if a.Cols != len(x) {
		panic("linalg: MulVec dimension mismatch")
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Dense) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// EigSym computes the eigendecomposition of a symmetric matrix:
// a = V · diag(λ) · Vᵀ with eigenvalues ascending and eigenvectors in
// the *columns* of V. The input is not modified.
func EigSym(a *Dense) (lambda []float64, v *Dense, err error) {
	if a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("linalg: EigSym needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if !a.IsSymmetric(1e-9) {
		return nil, nil, fmt.Errorf("linalg: EigSym needs a symmetric matrix")
	}
	n := a.Rows
	if n == 0 {
		return []float64{}, NewDense(0, 0), nil
	}
	v = a.Clone()
	d := make([]float64, n)
	e := make([]float64, n)
	tred2(v, d, e)
	if err := tql2(v, d, e); err != nil {
		return nil, nil, err
	}
	return d, v, nil
}

// tred2 reduces a symmetric matrix (in v) to tridiagonal form,
// accumulating the orthogonal transform back into v; d receives the
// diagonal and e the subdiagonal. Port of the EISPACK routine.
func tred2(v *Dense, d, e []float64) {
	n := v.Rows
	for j := 0; j < n; j++ {
		d[j] = v.At(n-1, j)
	}
	for i := n - 1; i > 0; i-- {
		scale, h := 0.0, 0.0
		for k := 0; k < i; k++ {
			scale += math.Abs(d[k])
		}
		if scale == 0 {
			e[i] = d[i-1]
			for j := 0; j < i; j++ {
				d[j] = v.At(i-1, j)
				v.Set(i, j, 0)
				v.Set(j, i, 0)
			}
		} else {
			for k := 0; k < i; k++ {
				d[k] /= scale
				h += d[k] * d[k]
			}
			f := d[i-1]
			g := math.Sqrt(h)
			if f > 0 {
				g = -g
			}
			e[i] = scale * g
			h -= f * g
			d[i-1] = f - g
			for j := 0; j < i; j++ {
				e[j] = 0
			}
			for j := 0; j < i; j++ {
				f = d[j]
				v.Set(j, i, f)
				g = e[j] + v.At(j, j)*f
				for k := j + 1; k <= i-1; k++ {
					g += v.At(k, j) * d[k]
					e[k] += v.At(k, j) * f
				}
				e[j] = g
			}
			f = 0
			for j := 0; j < i; j++ {
				e[j] /= h
				f += e[j] * d[j]
			}
			hh := f / (h + h)
			for j := 0; j < i; j++ {
				e[j] -= hh * d[j]
			}
			for j := 0; j < i; j++ {
				f = d[j]
				g = e[j]
				for k := j; k <= i-1; k++ {
					v.Set(k, j, v.At(k, j)-(f*e[k]+g*d[k]))
				}
				d[j] = v.At(i-1, j)
				v.Set(i, j, 0)
			}
		}
		d[i] = h
	}
	for i := 0; i < n-1; i++ {
		v.Set(n-1, i, v.At(i, i))
		v.Set(i, i, 1)
		h := d[i+1]
		if h != 0 {
			for k := 0; k <= i; k++ {
				d[k] = v.At(k, i+1) / h
			}
			for j := 0; j <= i; j++ {
				g := 0.0
				for k := 0; k <= i; k++ {
					g += v.At(k, i+1) * v.At(k, j)
				}
				for k := 0; k <= i; k++ {
					v.Set(k, j, v.At(k, j)-g*d[k])
				}
			}
		}
		for k := 0; k <= i; k++ {
			v.Set(k, i+1, 0)
		}
	}
	for j := 0; j < n; j++ {
		d[j] = v.At(n-1, j)
		v.Set(n-1, j, 0)
	}
	v.Set(n-1, n-1, 1)
	e[0] = 0
}

// tql2 diagonalises the tridiagonal matrix (d, e) with implicit-shift
// QL iterations, accumulating eigenvectors into v. Port of EISPACK.
func tql2(v *Dense, d, e []float64) error {
	n := v.Rows
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0
	f, tst1 := 0.0, 0.0
	eps := math.Nextafter(1, 2) - 1
	for l := 0; l < n; l++ {
		tst1 = math.Max(tst1, math.Abs(d[l])+math.Abs(e[l]))
		m := l
		for m < n {
			if math.Abs(e[m]) <= eps*tst1 {
				break
			}
			m++
		}
		if m > l {
			for iter := 0; ; iter++ {
				if iter >= 50 {
					return fmt.Errorf("linalg: QL iteration failed to converge")
				}
				g := d[l]
				p := (d[l+1] - g) / (2 * e[l])
				r := math.Hypot(p, 1)
				if p < 0 {
					r = -r
				}
				d[l] = e[l] / (p + r)
				d[l+1] = e[l] * (p + r)
				dl1 := d[l+1]
				h := g - d[l]
				for i := l + 2; i < n; i++ {
					d[i] -= h
				}
				f += h
				p = d[m]
				c, c2, c3 := 1.0, 1.0, 1.0
				el1 := e[l+1]
				s, s2 := 0.0, 0.0
				for i := m - 1; i >= l; i-- {
					c3 = c2
					c2 = c
					s2 = s
					g = c * e[i]
					h = c * p
					r = math.Hypot(p, e[i])
					e[i+1] = s * r
					s = e[i] / r
					c = p / r
					p = c*d[i] - s*g
					d[i+1] = h + s*(c*g+s*d[i])
					for k := 0; k < n; k++ {
						h = v.At(k, i+1)
						v.Set(k, i+1, s*v.At(k, i)+c*h)
						v.Set(k, i, c*v.At(k, i)-s*h)
					}
				}
				p = -s * s2 * c3 * el1 * e[l] / dl1
				e[l] = s * p
				d[l] = c * p
				if math.Abs(e[l]) <= eps*tst1 {
					break
				}
			}
		}
		d[l] += f
		e[l] = 0
	}
	// Sort ascending, carrying eigenvectors.
	for i := 0; i < n-1; i++ {
		k := i
		p := d[i]
		for j := i + 1; j < n; j++ {
			if d[j] < p {
				k = j
				p = d[j]
			}
		}
		if k != i {
			d[k] = d[i]
			d[i] = p
			for j := 0; j < n; j++ {
				p = v.At(j, i)
				v.Set(j, i, v.At(j, k))
				v.Set(j, k, p)
			}
		}
	}
	return nil
}
