package graphalign

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteTo serialises the graph as a plain edge list: a header line
// "n <nodes>" followed by one "u v" line per edge in deterministic
// order.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	n, err := fmt.Fprintf(bw, "n %d\n", g.N)
	total += int64(n)
	if err != nil {
		return total, err
	}
	for _, e := range g.Edges() {
		n, err = fmt.Fprintf(bw, "%d %d\n", e[0], e[1])
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, bw.Flush()
}

// ReadGraph parses the format written by WriteTo. Blank lines and
// lines starting with '#' are ignored.
func ReadGraph(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var g *Graph
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if g == nil {
			if len(fields) != 2 || fields[0] != "n" {
				return nil, fmt.Errorf("graphalign: line %d: expected header \"n <nodes>\", got %q", lineNo, line)
			}
			nodes, err := strconv.Atoi(fields[1])
			if err != nil || nodes < 0 {
				return nil, fmt.Errorf("graphalign: line %d: bad node count %q", lineNo, fields[1])
			}
			g = NewGraph(nodes)
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("graphalign: line %d: expected \"u v\", got %q", lineNo, line)
		}
		u, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("graphalign: line %d: bad edge %q", lineNo, line)
		}
		if u == v || u < 0 || v < 0 || u >= g.N || v >= g.N {
			return nil, fmt.Errorf("graphalign: line %d: edge (%d,%d) invalid for n=%d", lineNo, u, v, g.N)
		}
		g.AddEdge(u, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graphalign: empty graph input")
	}
	return g, nil
}
