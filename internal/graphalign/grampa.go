package graphalign

import (
	"fmt"
	"math"

	"hunipu/internal/linalg"
	"hunipu/internal/lsap"
)

// DefaultEta is the GRAMPA hyper-parameter the paper recommends and
// uses (η = 0.2, Section V-C).
const DefaultEta = 0.2

// Grampa computes the GRAMPA similarity matrix of Fan et al. 2019:
//
//	X = Σ_{i,j} w(λᵢ, μⱼ) · uᵢ uᵢᵀ J vⱼ vⱼᵀ,   w = 1/((λᵢ−μⱼ)² + η²)
//
// where (λ, U) and (μ, V) are the eigendecompositions of the two
// adjacency matrices and J is the all-ones matrix. Higher X[i][j]
// means node i of g1 is more similar to node j of g2. Computed as
// X = U · (W ∘ a bᵀ) · Vᵀ with a = Uᵀ1, b = Vᵀ1, in O(n³).
func Grampa(g1, g2 *Graph, eta float64) (*linalg.Dense, error) {
	if g1.N != g2.N {
		return nil, fmt.Errorf("graphalign: size mismatch %d vs %d", g1.N, g2.N)
	}
	if eta <= 0 {
		return nil, fmt.Errorf("graphalign: eta = %g, want > 0", eta)
	}
	n := g1.N
	if n == 0 {
		return linalg.NewDense(0, 0), nil
	}
	l1, u, err := linalg.EigSym(g1.Adjacency())
	if err != nil {
		return nil, fmt.Errorf("graphalign: eig of g1: %w", err)
	}
	l2, v, err := linalg.EigSym(g2.Adjacency())
	if err != nil {
		return nil, fmt.Errorf("graphalign: eig of g2: %w", err)
	}
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	a := linalg.MulVec(u.T(), ones)
	b := linalg.MulVec(v.T(), ones)

	mid := linalg.NewDense(n, n)
	for i := 0; i < n; i++ {
		row := mid.Row(i)
		for j := 0; j < n; j++ {
			d := l1[i] - l2[j]
			row[j] = a[i] * b[j] / (d*d + eta*eta)
		}
	}
	return linalg.Mul(linalg.Mul(u, mid), v.T()), nil
}

// SimilarityToCost converts a similarity matrix (maximise) into the
// non-negative integer cost matrix (minimise) the Hungarian solvers
// consume: costs are (max − sim) quantised to integers at the given
// resolution. Quantisation keeps every slack-matrix update exact, so
// the solvers' exact zero tests remain sound; at the default 10⁶
// resolution the induced assignment is optimal for the quantised
// problem and matches the continuous optimum in practice.
func SimilarityToCost(sim *linalg.Dense, resolution float64) (*lsap.Matrix, error) {
	if sim.Rows != sim.Cols {
		return nil, fmt.Errorf("graphalign: similarity matrix must be square, got %dx%d", sim.Rows, sim.Cols)
	}
	if resolution <= 0 {
		resolution = 1e6
	}
	n := sim.Rows
	out := lsap.NewMatrix(n)
	if n == 0 {
		return out, nil
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range sim.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("graphalign: similarity contains non-finite values")
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	span := hi - lo
	if span == 0 {
		return out, nil // all-equal similarity: all-zero costs
	}
	for i, v := range sim.Data {
		out.Data[i] = math.Round((hi - v) / span * resolution)
	}
	return out, nil
}

// AlignProblem bundles a ready-to-solve alignment instance.
type AlignProblem struct {
	// Cost is the quantised LSAP cost matrix.
	Cost *lsap.Matrix
	// Truth is the ground-truth correspondence (identity when the
	// noisy copy is not relabelled).
	Truth []int
}

// BuildAlignment produces the evaluation pipeline of Section V-C for
// one noise level: similarity of g with its noisy copy via GRAMPA,
// converted to integer costs.
func BuildAlignment(g, noisy *Graph, eta float64) (*AlignProblem, error) {
	sim, err := Grampa(g, noisy, eta)
	if err != nil {
		return nil, err
	}
	cost, err := SimilarityToCost(sim, 0)
	if err != nil {
		return nil, err
	}
	truth := make([]int, g.N)
	for i := range truth {
		truth[i] = i
	}
	return &AlignProblem{Cost: cost, Truth: truth}, nil
}
