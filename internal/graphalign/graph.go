// Package graphalign implements the paper's use case (Section V-C):
// aligning a graph with a noisy copy of itself. It provides an
// undirected graph type, the edge-retention noise model the evaluation
// uses, the GRAMPA spectral similarity of Fan et al. 2019, and the
// conversion from similarity (maximise) to integer costs (minimise)
// that the LSAP solvers consume.
package graphalign

import (
	"fmt"
	"math/rand"
	"sort"

	"hunipu/internal/linalg"
)

// Graph is a simple undirected graph on nodes 0..N-1.
type Graph struct {
	N     int
	edges map[[2]int]struct{}
}

// NewGraph creates an empty graph with n nodes.
func NewGraph(n int) *Graph {
	if n < 0 {
		panic("graphalign: negative node count")
	}
	return &Graph{N: n, edges: map[[2]int]struct{}{}}
}

func edgeKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// AddEdge inserts the undirected edge {u, v}; self-loops and
// duplicates are ignored. It reports whether the edge was new.
func (g *Graph) AddEdge(u, v int) bool {
	if u == v || u < 0 || v < 0 || u >= g.N || v >= g.N {
		return false
	}
	k := edgeKey(u, v)
	if _, dup := g.edges[k]; dup {
		return false
	}
	g.edges[k] = struct{}{}
	return true
}

// HasEdge reports whether {u, v} is present.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.edges[edgeKey(u, v)]
	return ok
}

// RemoveEdge deletes {u, v} and reports whether it existed.
func (g *Graph) RemoveEdge(u, v int) bool {
	k := edgeKey(u, v)
	if _, ok := g.edges[k]; !ok {
		return false
	}
	delete(g.edges, k)
	return true
}

// NumEdges returns the edge count m.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edges returns the edge list in deterministic (sorted) order.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, len(g.edges))
	for e := range g.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Degrees returns the degree sequence.
func (g *Graph) Degrees() []int {
	d := make([]int, g.N)
	for e := range g.edges {
		d[e[0]]++
		d[e[1]]++
	}
	return d
}

// Adjacency returns the dense symmetric 0/1 adjacency matrix.
func (g *Graph) Adjacency() *linalg.Dense {
	a := linalg.NewDense(g.N, g.N)
	for e := range g.edges {
		a.Set(e[0], e[1], 1)
		a.Set(e[1], e[0], 1)
	}
	return a
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.N)
	for e := range g.edges {
		c.edges[e] = struct{}{}
	}
	return c
}

// NoisyCopy returns the evaluation's noise model: a copy of g
// retaining exactly ⌈keep·m⌉ of the original edges, sampled uniformly
// without replacement ("modified versions featuring different
// percentages of edges", Section V-C).
func (g *Graph) NoisyCopy(rng *rand.Rand, keep float64) (*Graph, error) {
	if keep < 0 || keep > 1 {
		return nil, fmt.Errorf("graphalign: keep fraction %g outside [0,1]", keep)
	}
	edges := g.Edges()
	target := int(float64(len(edges))*keep + 0.5)
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	out := NewGraph(g.N)
	for _, e := range edges[:target] {
		out.AddEdge(e[0], e[1])
	}
	return out, nil
}

// PermuteNodes relabels nodes by perm (new[perm[i]] gets old i's
// edges), modelling the unknown correspondence alignment must recover.
func (g *Graph) PermuteNodes(perm []int) (*Graph, error) {
	if len(perm) != g.N {
		return nil, fmt.Errorf("graphalign: permutation length %d, want %d", len(perm), g.N)
	}
	seen := make([]bool, g.N)
	for _, p := range perm {
		if p < 0 || p >= g.N || seen[p] {
			return nil, fmt.Errorf("graphalign: not a permutation")
		}
		seen[p] = true
	}
	out := NewGraph(g.N)
	for e := range g.edges {
		out.AddEdge(perm[e[0]], perm[e[1]])
	}
	return out, nil
}

// Accuracy returns the node-correctness of an alignment: the fraction
// of nodes mapped to their true counterpart under truth.
func Accuracy(alignment, truth []int) float64 {
	if len(alignment) == 0 {
		return 0
	}
	ok := 0
	for i, a := range alignment {
		if i < len(truth) && a == truth[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(alignment))
}
