package graphalign

import (
	"bytes"
	"strings"
	"testing"
)

func TestGraphRoundTrip(t *testing.T) {
	g := NewGraph(5)
	g.AddEdge(0, 3)
	g.AddEdge(1, 2)
	g.AddEdge(4, 0)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 5 || got.NumEdges() != 3 {
		t.Fatalf("round trip: n=%d m=%d", got.N, got.NumEdges())
	}
	for _, e := range g.Edges() {
		if !got.HasEdge(e[0], e[1]) {
			t.Fatalf("missing edge %v", e)
		}
	}
}

func TestReadGraphCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\nn 3\n0 1\n# another\n1 2\n"
	g, err := ReadGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

func TestReadGraphErrors(t *testing.T) {
	for _, in := range []string{
		"",
		"3\n0 1\n",
		"n x\n",
		"n -2\n",
		"n 3\n0\n",
		"n 3\n0 a\n",
		"n 3\n0 3\n",
		"n 3\n1 1\n",
	} {
		if _, err := ReadGraph(strings.NewReader(in)); err == nil {
			t.Errorf("ReadGraph(%q) succeeded, want error", in)
		}
	}
}
