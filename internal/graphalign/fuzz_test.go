package graphalign

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadGraph checks the edge-list parser never panics and that any
// successfully parsed graph round-trips through WriteTo.
func FuzzReadGraph(f *testing.F) {
	f.Add("n 3\n0 1\n1 2\n")
	f.Add("n 0\n")
	f.Add("# comment\nn 2\n\n0 1\n")
	f.Add("n 5\n4 0\n")
	f.Add("")
	f.Add("n x\n")
	f.Add("n 2\n0 0\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadGraph(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo failed: %v", err)
		}
		again, err := ReadGraph(&buf)
		if err != nil {
			t.Fatalf("round-trip failed: %v", err)
		}
		if again.N != g.N || again.NumEdges() != g.NumEdges() {
			t.Fatalf("round-trip n=%d m=%d, want n=%d m=%d",
				again.N, again.NumEdges(), g.N, g.NumEdges())
		}
	})
}
