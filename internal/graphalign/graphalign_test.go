package graphalign

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hunipu/internal/cpuhung"
	"hunipu/internal/linalg"
)

func ringGraph(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

func randomGraph(rng *rand.Rand, n int, p float64) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph(4)
	if !g.AddEdge(0, 1) || !g.AddEdge(2, 1) {
		t.Fatal("AddEdge failed")
	}
	if g.AddEdge(1, 0) {
		t.Fatal("duplicate edge accepted")
	}
	if g.AddEdge(2, 2) {
		t.Fatal("self-loop accepted")
	}
	if g.AddEdge(0, 9) {
		t.Fatal("out-of-range edge accepted")
	}
	if g.NumEdges() != 2 || !g.HasEdge(1, 0) || g.HasEdge(0, 3) {
		t.Fatal("edge state wrong")
	}
	if !g.RemoveEdge(0, 1) || g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge broken")
	}
	deg := g.Degrees()
	if deg[1] != 1 || deg[2] != 1 || deg[0] != 0 {
		t.Fatalf("degrees = %v", deg)
	}
}

func TestEdgesDeterministicOrder(t *testing.T) {
	g := NewGraph(5)
	g.AddEdge(3, 1)
	g.AddEdge(0, 4)
	g.AddEdge(0, 2)
	e := g.Edges()
	want := [][2]int{{0, 2}, {0, 4}, {1, 3}}
	for i := range want {
		if e[i] != want[i] {
			t.Fatalf("Edges() = %v", e)
		}
	}
}

func TestAdjacencySymmetric(t *testing.T) {
	g := ringGraph(6)
	a := g.Adjacency()
	if !a.IsSymmetric(0) {
		t.Fatal("adjacency not symmetric")
	}
	sum := 0.0
	for _, v := range a.Data {
		sum += v
	}
	if sum != float64(2*g.NumEdges()) {
		t.Fatalf("adjacency sum = %g", sum)
	}
}

func TestNoisyCopyKeepsExactFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 40, 0.3)
	for _, keep := range []float64{0.8, 0.9, 0.95, 0.99, 1.0} {
		noisy, err := g.NoisyCopy(rng, keep)
		if err != nil {
			t.Fatal(err)
		}
		want := int(float64(g.NumEdges())*keep + 0.5)
		if noisy.NumEdges() != want {
			t.Fatalf("keep=%g: %d edges, want %d", keep, noisy.NumEdges(), want)
		}
		// Noisy edges are a subset of the original.
		for _, e := range noisy.Edges() {
			if !g.HasEdge(e[0], e[1]) {
				t.Fatalf("keep=%g: edge %v not in original", keep, e)
			}
		}
	}
	if _, err := g.NoisyCopy(rng, 1.5); err == nil {
		t.Fatal("keep > 1 accepted")
	}
}

func TestPermuteNodes(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1)
	p, err := g.PermuteNodes([]int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !p.HasEdge(2, 0) || p.NumEdges() != 1 {
		t.Fatal("permutation wrong")
	}
	if _, err := g.PermuteNodes([]int{0, 0, 1}); err == nil {
		t.Fatal("non-permutation accepted")
	}
	if _, err := g.PermuteNodes([]int{0}); err == nil {
		t.Fatal("short permutation accepted")
	}
}

func TestAccuracy(t *testing.T) {
	if a := Accuracy([]int{0, 1, 2}, []int{0, 1, 2}); a != 1 {
		t.Fatalf("accuracy = %g", a)
	}
	if a := Accuracy([]int{0, 2, 1, 3}, []int{0, 1, 2, 3}); a != 0.5 {
		t.Fatalf("accuracy = %g", a)
	}
	if a := Accuracy(nil, nil); a != 0 {
		t.Fatalf("accuracy(nil) = %g", a)
	}
}

func TestGrampaValidation(t *testing.T) {
	g1, g2 := ringGraph(4), ringGraph(5)
	if _, err := Grampa(g1, g2, DefaultEta); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := Grampa(g1, g1, 0); err == nil {
		t.Fatal("eta = 0 accepted")
	}
	sim, err := Grampa(NewGraph(0), NewGraph(0), DefaultEta)
	if err != nil || sim.Rows != 0 {
		t.Fatalf("empty grampa: %v", err)
	}
}

func TestGrampaSelfAlignmentIsDiagonalHeavy(t *testing.T) {
	// Aligning an asymmetric graph with itself: the identity should be
	// the optimal assignment on the GRAMPA similarity.
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 24, 0.2)
	prob, err := BuildAlignment(g, g.Clone(), DefaultEta)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := (cpuhung.JV{}).Solve(prob.Cost)
	if err != nil {
		t.Fatal(err)
	}
	acc := Accuracy(sol.Assignment, prob.Truth)
	if acc < 0.95 {
		t.Fatalf("self-alignment accuracy = %g, want ≈ 1", acc)
	}
}

func TestGrampaNoisyAlignmentRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := randomGraph(rng, 30, 0.25)
	noisy, err := g.NoisyCopy(rng, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := BuildAlignment(g, noisy, DefaultEta)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := (cpuhung.JV{}).Solve(prob.Cost)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(sol.Assignment, prob.Truth); acc < 0.5 {
		t.Fatalf("alignment accuracy %g too low at 95%% retained edges", acc)
	}
}

func TestSimilarityToCost(t *testing.T) {
	s := newSim(2, []float64{1, 0.5, 0, 1})
	c, err := SimilarityToCost(s, 100)
	if err != nil {
		t.Fatal(err)
	}
	// max=1, min=0: cost = (1−sim)·100.
	want := []float64{0, 50, 100, 0}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("cost = %v, want %v", c.Data, want)
		}
	}
}

func TestSimilarityToCostDegenerate(t *testing.T) {
	s := newSim(2, []float64{3, 3, 3, 3})
	c, err := SimilarityToCost(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range c.Data {
		if v != 0 {
			t.Fatal("constant similarity should give zero costs")
		}
	}
}

func TestSimilarityToCostOrderPreserved(t *testing.T) {
	// Higher similarity must map to lower cost.
	s := newSim(2, []float64{0.9, 0.1, 0.4, 0.8})
	c, err := SimilarityToCost(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !(c.At(0, 0) < c.At(0, 1)) || !(c.At(1, 1) < c.At(1, 0)) {
		t.Fatalf("cost order broken: %v", c.Data)
	}
	if _, err := SimilarityToCost(newSim(1, []float64{math.Inf(1)}), 0); err == nil {
		t.Fatal("non-finite similarity accepted")
	}
}

// Property: the noisy copy never gains edges and never exceeds the
// original edge set.
func TestNoisySubsetProperty(t *testing.T) {
	f := func(seed int64, keepPct uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		keep := float64(keepPct%101) / 100
		g := randomGraph(rng, 15, 0.4)
		noisy, err := g.NoisyCopy(rng, keep)
		if err != nil {
			return false
		}
		if noisy.NumEdges() > g.NumEdges() {
			return false
		}
		for _, e := range noisy.Edges() {
			if !g.HasEdge(e[0], e[1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// newSim builds a Dense similarity matrix for tests.
func newSim(n int, data []float64) *linalg.Dense {
	return &linalg.Dense{Rows: n, Cols: n, Data: data}
}

// GRAMPA must recover a hidden node relabeling: align g with a
// permuted copy of itself and check the mapping matches the
// permutation.
func TestGrampaRecoversPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	n := 26
	g := randomGraph(rng, n, 0.3)
	perm := rng.Perm(n)
	permuted, err := g.PermuteNodes(perm)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Grampa(g, permuted, DefaultEta)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := SimilarityToCost(sim, 0)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := (cpuhung.JV{}).Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(sol.Assignment, perm); acc < 0.9 {
		t.Fatalf("permutation recovery accuracy = %g", acc)
	}
}

// Degenerate graphs exercise the spectral path's edge cases.
func TestGrampaDegenerateGraphs(t *testing.T) {
	// Empty graphs: constant similarity, any matching optimal.
	e1, e2 := NewGraph(5), NewGraph(5)
	prob, err := BuildAlignment(e1, e2, DefaultEta)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (cpuhung.JV{}).Solve(prob.Cost); err != nil {
		t.Fatal(err)
	}
	// Complete graphs: all nodes symmetric, still solvable.
	c1, c2 := NewGraph(6), NewGraph(6)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			c1.AddEdge(i, j)
			c2.AddEdge(i, j)
		}
	}
	prob, err = BuildAlignment(c1, c2, DefaultEta)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := (cpuhung.JV{}).Solve(prob.Cost)
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Assignment.Validate(6); err != nil {
		t.Fatal(err)
	}
}
