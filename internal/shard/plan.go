package shard

import (
	"sync"

	"hunipu/internal/ipu"
	"hunipu/internal/poplar"
)

// Span is a half-open row range [Lo, Hi) of the cost matrix owned by
// one chip.
type Span struct{ Lo, Hi int }

// Len returns the number of rows in the span.
func (s Span) Len() int { return s.Hi - s.Lo }

// Plan is the immutable sharding layout for one (problem size, fabric
// topology) pair: which chip owns which row block. Plans are what the
// cache hands out, so two solves with the same topology share one plan
// and two solves with different topologies never do.
type Plan struct {
	// N is the problem size the plan partitions.
	N int
	// Devices is the fabric size the plan spreads the rows over.
	Devices int
	// Ranges[d] is the row block of chip d. Balanced: sizes differ by
	// at most one row, lower chips take the extra rows.
	Ranges []Span
}

// partition spreads n rows over k chips, balanced, in chip order.
func partition(n, k int) []Span {
	spans := make([]Span, k)
	base, extra := n/k, n%k
	lo := 0
	for d := 0; d < k; d++ {
		rows := base
		if d < extra {
			rows++
		}
		spans[d] = Span{Lo: lo, Hi: lo + rows}
		lo += rows
	}
	return spans
}

// planKey identifies one shard topology: the problem size, the fabric
// size, the per-chip shape that constrains the layout, and the guard
// policy the fabric runs under. Two solves agree on a plan only when
// every key field matches — in particular, a guarded fabric (whose
// compiled collectives carry frame checksums) never shares a plan with
// an unguarded one, even though the row partition happens to coincide.
type planKey struct {
	n       int
	devices int
	tiles   int
	mem     int
	name    string
	guard   poplar.GuardPolicy
}

// PlanCache memoises sharding plans per topology, the shard-level
// counterpart of core's compiled-program cache: a warm solve reuses the
// plan computed by the first solve with the same topology, and solves
// with different topologies are guaranteed distinct plans because the
// topology is the cache key.
type PlanCache struct {
	mu     sync.Mutex
	plans  map[planKey]*Plan
	hits   int64
	misses int64
}

// NewPlanCache returns an empty cache.
func NewPlanCache() *PlanCache {
	return &PlanCache{plans: map[planKey]*Plan{}}
}

// DefaultCache is the process-wide plan cache used when Options.Cache
// is nil, so repeated hunipu.Solve calls go warm across call sites.
var DefaultCache = NewPlanCache()

// PlanFor returns the plan for an n-row problem over a k-chip fabric of
// the given per-chip configuration under the given guard policy,
// computing and caching it on first use. The returned plan is shared
// and must not be mutated.
func (pc *PlanCache) PlanFor(n, k int, cfg ipu.Config, guard poplar.GuardPolicy) *Plan {
	key := planKey{n: n, devices: k, tiles: cfg.TilesPerIPU, mem: cfg.TileMemory, name: cfg.Name, guard: guard}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if p, ok := pc.plans[key]; ok {
		pc.hits++
		return p
	}
	pc.misses++
	p := &Plan{N: n, Devices: k, Ranges: partition(n, k)}
	pc.plans[key] = p
	return p
}

// CacheSnapshot is a point-in-time view of cache counters.
type CacheSnapshot struct {
	Hits, Misses, Size int64
}

// Snapshot returns the cache counters.
func (pc *PlanCache) Snapshot() CacheSnapshot {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return CacheSnapshot{Hits: pc.hits, Misses: pc.misses, Size: int64(len(pc.plans))}
}
