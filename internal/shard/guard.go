package shard

import (
	"fmt"
	"math"

	"hunipu/internal/faultinject"
	"hunipu/internal/poplar"
)

// This file is the fabric-wide silent-corruption guard layer: the
// sharded counterpart of poplar's single-device guards (DESIGN.md §5d,
// now §5g). Three mechanisms compose:
//
//  1. Checksummed collectives. Every gather/broadcast frame carries a
//     splitmix checksum computed sender-side; the receiver verifies it
//     on receipt. A mismatched frame (linkflip, exbitflip) or a stale
//     one (its sequence number disagrees) is retransmitted with
//     doubling backoff, each retry re-priced at the IPU-Link rate and
//     re-exposed to the fault schedule, until MaxRetransmits is
//     exhausted — at which point the sender is struck for quarantine
//     and the solve fails over to certified rollback with a typed
//     *faultinject.CorruptionError.
//  2. Per-shard guard probes. Each shard maintains an incremental
//     checksum over its device-resident row block of the slack matrix
//     (same laundering-proof contribution sum as poplar's tensors:
//     legitimate writes subtract the old and add the new contribution,
//     so a silent flip leaves a residual no later overwrite cancels),
//     re-verified at guard cadence; under GuardInvariants and above
//     the supervisor also cross-checks sampled shard rows against its
//     held duals (slack ≡ input − u − v, slack ≥ −tol) every outer
//     loop.
//  3. Quarantine. A shard that accumulates guardMaxStrikes detections
//     (or exhausts retransmits once) is classified Byzantine: it is
//     removed from the fabric exactly like a lost chip, its rows are
//     re-sharded over the survivors, and the solve resumes from the
//     newest checkpoint epoch predating the first undetected
//     injection — certified rollback over the same bounded ring as the
//     single-device engine.
//
// All guard work is charged to the cycle model: checksum maintenance
// and probe evaluation as GuardCycles, retransmitted frames as
// exchange bytes at the IPU-Link rate.

// DefaultMaxRetransmits bounds per-frame retransmit attempts when
// Options.MaxRetransmits is zero.
const DefaultMaxRetransmits = 3

// guardMaxStrikes is how many attributed detections quarantine a
// shard. Retransmit exhaustion quarantines immediately.
const guardMaxStrikes = 2

// fabricGuard is the supervisor-held guard state of one sharded solve.
type fabricGuard struct {
	policy poplar.GuardPolicy
	// sums[d] is chip d's incremental checksum over its row block of
	// the slack matrix (zero for dead or row-less chips).
	sums []uint64
	// pending[d] counts cell-level checksum updates not yet charged;
	// flushed to ChargeGuard at each superstep barrier.
	pending []int64
	// strikes[d] counts attributed detections; at guardMaxStrikes the
	// chip is quarantined.
	strikes []int
	// pendingSince is the fabric superstep of the earliest silent
	// corruption applied to live state and not yet accounted for by a
	// detection (-1 = none). Checkpoint epochs taken after it are
	// poisoned.
	pendingSince int64
	// lastVerify is the fabric superstep of the last full verification.
	lastVerify int64
	// tol is the attestation-grade tolerance for invariant probes.
	tol float64

	trips          int
	retransmits    int
	rollbackEpochs int
	maxLatency     int64
	quarantined    []int
}

func newFabricGuard(policy poplar.GuardPolicy, k int, tol float64) *fabricGuard {
	return &fabricGuard{
		policy:       policy,
		sums:         make([]uint64, k),
		pending:      make([]int64, k),
		strikes:      make([]int, k),
		pendingSince: -1,
		tol:          tol,
	}
}

// armed reports whether any guard machinery runs at all.
func (g *fabricGuard) armed() bool { return g.policy > poplar.GuardOff }

// cadence is the full-verification period in fabric supersteps:
// checkpoint cadence normally, tightened under GuardParanoid (never
// loosened), zero when the guard is off.
func (g *fabricGuard) cadence(ckptEvery int64) int64 {
	if !g.armed() {
		return 0
	}
	c := ckptEvery
	if c <= 0 {
		c = DefaultCheckpointEvery
	}
	if g.policy == poplar.GuardParanoid && poplar.GuardParanoidEvery < c {
		c = poplar.GuardParanoidEvery
	}
	return c
}

// strike records an attributed detection against chip d.
func (g *fabricGuard) strike(d int) {
	if d >= 0 && d < len(g.strikes) {
		g.strikes[d]++
	}
}

// condemn marks chip d for immediate quarantine (retransmit
// exhaustion: the link to it cannot be trusted at any backoff).
func (g *fabricGuard) condemn(d int) {
	if d >= 0 && d < len(g.strikes) && g.strikes[d] < guardMaxStrikes {
		g.strikes[d] = guardMaxStrikes
	}
}

// shouldQuarantine reports whether chip d has struck out.
func (g *fabricGuard) shouldQuarantine(d int) bool {
	return d >= 0 && d < len(g.strikes) && g.strikes[d] >= guardMaxStrikes
}

// ownerOfRow returns the live chip whose block holds row i (the root
// as a degenerate fallback; every row has exactly one owner between
// re-shardings).
func (f *fabric) ownerOfRow(i int) int {
	for d, sp := range f.ranges {
		if f.alive[d] && i >= sp.Lo && i < sp.Hi {
			return d
		}
	}
	return f.root()
}

// setSlack writes one slack cell through the guard layer: the owning
// shard's incremental checksum is updated with the old contribution
// subtracted and the new one added — the legitimate-mutation path that
// silent flips bypass.
func (r *run) setSlack(idx int, v float64) {
	if r.g.armed() {
		d := r.f.ownerOfRow(idx / r.st.n)
		if d >= 0 {
			r.g.sums[d] += poplar.GuardContribution(v, idx) - poplar.GuardContribution(r.st.s[idx], idx)
			r.g.pending[d] += 2
		}
	}
	r.st.s[idx] = v
}

// flushGuardCharges prices the accumulated incremental checksum work
// at the superstep barrier.
func (r *run) flushGuardCharges() {
	if !r.g.armed() {
		return
	}
	for d, n := range r.g.pending {
		if n > 0 && r.f.alive[d] {
			r.f.devs[d].ChargeGuard(n)
			r.g.pending[d] = 0
		}
	}
}

// rebaseline recomputes every live shard's block checksum from the
// (just-restored or just-re-sharded) supervisor state, charging each
// chip a full pass over its block.
func (g *fabricGuard) rebaseline(r *run) {
	if !g.armed() {
		return
	}
	n := r.st.n
	for d := range g.sums {
		g.sums[d] = 0
		g.pending[d] = 0
		if !r.f.alive[d] {
			continue
		}
		sp := r.f.ranges[d]
		var sum uint64
		for idx := sp.Lo * n; idx < sp.Hi*n; idx++ {
			sum += poplar.GuardContribution(r.st.s[idx], idx)
		}
		g.sums[d] = sum
		r.f.devs[d].ChargeGuard(int64(sp.Len()) * int64(n))
	}
}

// corruption assembles a typed corruption report at the current fabric
// position, attributing it to chip device (-1 = unattributed) and
// charging detection latency against the earliest pending injection.
func (r *run) corruption(guard string, device int, err error) *faultinject.CorruptionError {
	//hunipulint:ignore hotalloc corruption reports are cold: one allocation per detected corruption, not per superstep
	ce := &faultinject.CorruptionError{
		Guard:    guard,
		Detected: r.f.step,
		Injected: -1,
		Latency:  -1,
		Device:   device,
		Err:      err,
	}
	if r.g.pendingSince >= 0 {
		ce.Injected = r.g.pendingSince
		ce.Latency = r.f.step - r.g.pendingSince
	}
	r.g.trips++
	if ce.Latency > r.g.maxLatency {
		r.g.maxLatency = ce.Latency
	}
	return ce
}

// noteSilent records that silent corruption landed in live state.
func (r *run) noteSilent(fe *faultinject.FaultError) {
	r.res.Faults++
	if r.g.pendingSince < 0 {
		r.g.pendingSince = fe.Point.Superstep
	}
}

// flipCell applies a deterministic mantissa-bit flip (bits 44–51, so
// the value stays finite but shifts by up to ~50%) to one cell of chip
// d's device-resident row block, bypassing the incremental checksums —
// the fabric analogue of poplar's flipBit.
func (r *run) flipCell(d int, fe *faultinject.FaultError) {
	n := r.st.n
	sp := r.f.ranges[d]
	cells := sp.Len() * n
	if cells == 0 {
		return
	}
	r.noteSilent(fe)
	idx := sp.Lo*n + int((uint64(fe.Point.Superstep)*31+uint64(fe.Rule)+1)%uint64(cells))
	bit := uint(44 + fe.Point.Superstep%8)
	r.st.s[idx] = math.Float64frombits(math.Float64bits(r.st.s[idx]) ^ (1 << bit))
}

// frameBytes is the wire size of chip d's frame in the superstep shape
// pc: what a retransmit has to move again.
func (r *run) frameBytes(d int, pc phaseCharge) int64 {
	b := pc.gather + pc.gatherPerRow*int64(r.f.ranges[d].Len()) + pc.scatter
	if b < 8 {
		b = 8 // a checksum word always crosses the wire
	}
	return b
}

// applySilent handles a silent fault injected at chip d during the
// superstep pc. Frame classes (linkflip, exbitflip, stale) corrupt the
// chip's collective frame: a guarded fabric detects the bad checksum or
// stale sequence number on receipt and enters the retransmit loop; an
// unguarded one commits the corrupted frame into the supervisor state
// (stale frames excepted — they change no bytes). Block classes
// (shardflip, bitflip) flip a bit in the chip's device-resident row
// block either way; only the cadence checksums or probes can see those.
func (r *run) applySilent(d int, fe *faultinject.FaultError, pc phaseCharge) error {
	switch fe.Class {
	case faultinject.SilentLinkBitflip, faultinject.SilentExchangeBitflip, faultinject.SilentStaleRead:
		if r.g.armed() {
			return r.retransmit(d, fe, pc)
		}
		if fe.Class != faultinject.SilentStaleRead {
			r.flipCell(d, fe)
		} else {
			r.res.Faults++ // stale frame: charged but byte-invisible
		}
		return nil
	default: // SilentShardBitflip, SilentTileBitflip
		r.flipCell(d, fe)
		return nil
	}
}

// retransmit is the checksummed-collective repair loop: the receiver
// detected chip d's frame as corrupt (or stale) and requests it again,
// with doubling backoff, until a clean frame arrives or the bounded
// budget is exhausted. Every retry repeats the frame's wire cost at the
// IPU-Link rate, charges the verification as GuardCycles, and gives
// the fault schedule a fresh crack at the wire (a distinct phase name
// derives a fresh deterministic coin). Exhaustion condemns the sender
// to quarantine and surfaces a typed corruption error.
func (r *run) retransmit(d int, fe *faultinject.FaultError, pc phaseCharge) error {
	f := r.f
	root := f.root()
	frame := r.frameBytes(d, pc)
	dev := f.devs[d]
	backoff := f.cfg.SyncCycles
	if backoff <= 0 {
		backoff = 1
	}
	r.g.trips++ // the receipt-time detection of the original frame
	r.res.Faults++
	for try := 1; try <= r.sv.maxRetx; try++ {
		r.g.retransmits++
		// Re-verify + wait out the backoff, then move the frame again.
		dev.ChargeGuard(frame/8 + backoff)
		dev.ChargeExchange(frame, frame)
		if root >= 0 && root != d {
			f.devs[root].ChargeGuard(frame / 8)
			f.devs[root].ChargeExchange(frame, frame)
		}
		backoff *= 2
		refe := dev.CheckFault(fmt.Sprintf("%s:retx%d", pc.phase, try), faultinject.KindSuperstep)
		if refe == nil {
			return nil // clean frame received
		}
		if !refe.Silent() {
			r.lastFault = refe
			return refe // the wire produced an announced fault instead
		}
		switch refe.Class {
		case faultinject.SilentLinkBitflip, faultinject.SilentExchangeBitflip, faultinject.SilentStaleRead:
			r.g.trips++ // the retry was corrupted too; loop
			r.res.Faults++
		default:
			// A block flip landed during the retransmit window; the
			// frame itself came through clean.
			r.flipCell(d, refe)
			return nil
		}
	}
	r.g.condemn(d)
	ce := r.corruption(fmt.Sprintf("fabric:frame:%s", pc.phase), d,
		fmt.Errorf("shard: chip %d exhausted %d retransmit(s): %w", d, r.sv.maxRetx, fe))
	if ce.Latency < 0 {
		// Frame corruption is caught on receipt, in the same collective
		// that carried it: zero-latency detection, not unknown.
		ce.Injected, ce.Latency = ce.Detected, 0
	}
	return ce
}

// maybeGuard runs the full per-shard verification when the cadence is
// due. Called at every outer-loop head and inside the zero-search loop,
// so a paranoid fabric verifies mid-search too.
func (r *run) maybeGuard() error {
	c := r.g.cadence(r.sv.ckptEvery)
	if c == 0 || r.f.step-r.g.lastVerify < c {
		return nil
	}
	return r.guardVerify()
}

// guardVerify recomputes every live shard's block checksum against its
// incremental accumulator and, under GuardInvariants and above, runs
// the dual-identity and slack probes over each block. A mismatch is
// attributed to the owning chip (striking it for quarantine) and
// surfaces as a typed *faultinject.CorruptionError.
func (r *run) guardVerify() error {
	g := r.g
	if !g.armed() {
		return nil
	}
	g.lastVerify = r.f.step
	st := r.st
	n := st.n
	for d := range r.f.devs {
		if !r.f.alive[d] {
			continue
		}
		sp := r.f.ranges[d]
		var sum uint64
		for idx := sp.Lo * n; idx < sp.Hi*n; idx++ {
			sum += poplar.GuardContribution(st.s[idx], idx)
		}
		r.f.devs[d].ChargeGuard(int64(sp.Len()) * int64(n))
		if sum != g.sums[d] {
			g.strike(d)
			return r.corruption(fmt.Sprintf("fabric:checksum:dev%d", d), d,
				fmt.Errorf("shard: chip %d row-block checksum mismatch at superstep %d", d, r.f.step))
		}
		if g.policy >= poplar.GuardInvariants {
			if err := r.probeBlock(d, sp); err != nil {
				g.strike(d)
				return r.corruption(fmt.Sprintf("fabric:invariant:dev%d", d), d, err)
			}
		}
	}
	return nil
}

// probeBlock runs the dual-identity and slack invariants over chip d's
// row block: every cell must satisfy s[i][j] ≡ c[i][j] − u[i] − v[j]
// within tolerance, and no slack may be meaningfully negative. The
// pristine input and the duals are supervisor-held (trusted host
// memory), so this is the supervisor cross-checking the shard's state
// against its own certificates — ABFT in the Huang–Abraham sense.
func (r *run) probeBlock(d int, sp Span) error {
	st := r.st
	n := st.n
	if !st.inited {
		return nil // mid-initialisation states are not yet dual-consistent
	}
	c := r.c.Data
	tol := r.g.tol
	r.f.devs[d].ChargeGuard(int64(sp.Len()) * int64(n))
	for i := sp.Lo; i < sp.Hi; i++ {
		for j := 0; j < n; j++ {
			idx := i*n + j
			if diff := math.Abs(st.s[idx] - (c[idx] - st.u[i] - st.v[j])); diff > tol {
				return fmt.Errorf("shard: chip %d dual identity violated at (%d,%d): |s-(c-u-v)| = %g", d, i, j, diff)
			}
			if st.s[idx] < -tol {
				return fmt.Errorf("shard: chip %d negative slack %g at (%d,%d)", d, st.s[idx], i, j)
			}
		}
	}
	return nil
}

// crossCheck is the supervisor's per-outer-loop summary check under
// GuardInvariants and above: one gathered summary superstep, then one
// sampled row per live shard (rotating with the fabric clock) verified
// against the held duals — a cheap early tripwire between full
// verifications.
func (r *run) crossCheck() error {
	if r.g.policy < poplar.GuardInvariants {
		return nil
	}
	if err := r.superstep(phaseCharge{phase: "shard:guard_summary", gather: 24, scatter: 8}); err != nil {
		return err
	}
	st := r.st
	if !st.inited {
		return nil
	}
	n := st.n
	c := r.c.Data
	tol := r.g.tol
	for d := range r.f.devs {
		if !r.f.alive[d] {
			continue
		}
		sp := r.f.ranges[d]
		if sp.Len() == 0 {
			continue
		}
		i := sp.Lo + int(r.f.step%int64(sp.Len()))
		r.f.devs[d].ChargeGuard(int64(n))
		for j := 0; j < n; j++ {
			idx := i*n + j
			if diff := math.Abs(st.s[idx] - (c[idx] - st.u[i] - st.v[j])); diff > tol {
				r.g.strike(d)
				return r.corruption(fmt.Sprintf("fabric:summary:dev%d", d), d,
					fmt.Errorf("shard: chip %d summary row %d disagrees with held duals: |s-(c-u-v)| = %g", d, i, diff))
			}
		}
	}
	return nil
}

// epoch is one entry of the bounded checkpoint ring.
type epoch struct {
	st   *runState
	step int64
}

// rollbackPastPoison is coordinated certified rollback: walk the
// checkpoint ring newest→oldest, discard epochs taken after the first
// undetected injection (their snapshots carry the corruption), restore
// the newest clean one, re-baseline the shard checksums, and validate
// the restored state with the invariant probes. Returns nil when a
// certified epoch was restored; otherwise ce — annotated with the
// poisoned-epoch count — when every reachable epoch is suspect.
func (r *run) rollbackPastPoison(ce *faultinject.CorruptionError) error {
	g := r.g
	for len(r.cks) > 0 {
		ep := r.cks[len(r.cks)-1]
		if g.pendingSince >= 0 && ep.step > g.pendingSince {
			ce.PoisonedEpochs++
			g.rollbackEpochs++
			r.cks = r.cks[:len(r.cks)-1]
			continue
		}
		r.st = ep.st.clone()
		r.ckStep = ep.step
		r.needWrite = true
		g.rebaseline(r)
		if err := r.validateEpoch(); err != nil {
			ce.PoisonedEpochs++
			g.rollbackEpochs++
			r.cks = r.cks[:len(r.cks)-1]
			continue
		}
		g.pendingSince = -1
		g.lastVerify = r.f.step
		return nil
	}
	return ce
}

// validateEpoch re-runs the invariant probes over every live block of
// a just-restored epoch (checksums were re-baselined from it, so only
// the algebraic invariants can still disagree).
func (r *run) validateEpoch() error {
	if r.g.policy < poplar.GuardInvariants {
		return nil
	}
	for d := range r.f.devs {
		if !r.f.alive[d] {
			continue
		}
		if err := r.probeBlock(d, r.f.ranges[d]); err != nil {
			return err
		}
	}
	return nil
}
