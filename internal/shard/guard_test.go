package shard

import (
	"context"
	"math/rand"
	"testing"

	"hunipu/internal/faultinject"
	"hunipu/internal/lsap"
	"hunipu/internal/poplar"
)

// guardSolve runs one guarded sharded solve against spec and returns
// the result (which may accompany an error).
func guardSolve(t *testing.T, spec string, guard poplar.GuardPolicy, k, n int) (*Result, error) {
	t.Helper()
	sched, err := faultinject.ParseSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	sv := mustSolver(t, Options{
		Config:  smallChip(),
		Devices: k,
		Fault:   sched,
		Guard:   guard,
		Cache:   NewPlanCache(),
	})
	m := genMatrix(t, rand.New(rand.NewSource(7)), n)
	return sv.SolveShards(context.Background(), m) //hunipulint:ignore ctxflow test drives the solve directly
}

// TestGuardBlockFlipDetected pins the per-shard probe path: a silent
// bitflip in a shard's device-resident row block is invisible to the
// collective checksums, but the cadence block probe catches it, the
// solve rolls back past the poison, and the certified answer matches
// the CPU baseline.
func TestGuardBlockFlipDetected(t *testing.T) {
	for _, guard := range []poplar.GuardPolicy{poplar.GuardChecksums, poplar.GuardInvariants, poplar.GuardParanoid} {
		res, err := guardSolve(t, "shardflip at=10 device=1", guard, 2, 12)
		if err != nil {
			t.Fatalf("guard %v: %v", guard, err)
		}
		if res.Faults == 0 {
			t.Fatalf("guard %v: flip never fired", guard)
		}
		if res.GuardTrips == 0 {
			t.Fatalf("guard %v: flip landed but no guard trip recorded", guard)
		}
		if res.Rollbacks == 0 {
			t.Fatalf("guard %v: detection without a rollback", guard)
		}
		if res.DetectionLatency <= 0 {
			t.Fatalf("guard %v: detection latency %d, want > 0 (block flips are caught at cadence, not instantly)",
				guard, res.DetectionLatency)
		}
		m := genMatrix(t, rand.New(rand.NewSource(7)), 12)
		if want := refCost(t, m); res.Solution.Cost != want {
			t.Fatalf("guard %v: cost %g, want %g", guard, res.Solution.Cost, want)
		}
	}
}

// TestGuardFrameFlipRetransmitted pins the checksummed-collective path:
// an on-wire frame flip is detected on receipt and repaired by bounded
// retransmit — no rollback needed — with the retries both counted and
// charged as extra exchange traffic.
func TestGuardFrameFlipRetransmitted(t *testing.T) {
	res, err := guardSolve(t, "linkflip at=12 device=1", poplar.GuardChecksums, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retransmits == 0 {
		t.Fatal("frame flip repaired without a recorded retransmit")
	}
	if res.GuardTrips == 0 {
		t.Fatal("frame flip detected without a guard trip")
	}
	if res.Rollbacks != 0 {
		t.Fatalf("clean retransmit should not roll back, got %d rollback(s)", res.Rollbacks)
	}
	if len(res.Quarantined) != 0 {
		t.Fatalf("one repaired frame should not quarantine, got %v", res.Quarantined)
	}
	m := genMatrix(t, rand.New(rand.NewSource(7)), 12)
	if want := refCost(t, m); res.Solution.Cost != want {
		t.Fatalf("cost %g, want %g", res.Solution.Cost, want)
	}

	// The retries are priced: the same solve without the flip moves
	// fewer bytes and pays fewer guard cycles on the afflicted chip.
	clean, err := guardSolve(t, "", poplar.GuardChecksums, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	var dirty, base int64
	for _, s := range res.PerDevice {
		dirty += s.BytesExchanged
	}
	for _, s := range clean.PerDevice {
		base += s.BytesExchanged
	}
	if dirty <= base {
		t.Fatalf("retransmit moved no extra bytes: %d ≤ %d", dirty, base)
	}
}

// TestGuardRetransmitExhaustionQuarantines pins the Byzantine path: a
// chip whose frames are corrupted on every retry exhausts the bounded
// retransmit budget, is quarantined out of the fabric, and the solve
// completes on the survivor with a certified answer.
func TestGuardRetransmitExhaustionQuarantines(t *testing.T) {
	res, err := guardSolve(t, "linkflip every=1 device=1", poplar.GuardChecksums, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 1 || res.Quarantined[0] != 1 {
		t.Fatalf("Quarantined = %v, want [1]", res.Quarantined)
	}
	if len(res.LostDevices) != 1 || res.LostDevices[0] != 1 {
		t.Fatalf("LostDevices = %v, want [1]", res.LostDevices)
	}
	if len(res.Reshards) != 1 || !res.Reshards[0].Quarantined {
		t.Fatalf("Reshards = %+v, want one quarantine re-shard", res.Reshards)
	}
	if res.Survivors != 1 {
		t.Fatalf("Survivors = %d, want 1", res.Survivors)
	}
	if res.Retransmits < DefaultMaxRetransmits {
		t.Fatalf("Retransmits = %d, want ≥ %d (the full budget was burned)",
			res.Retransmits, DefaultMaxRetransmits)
	}
	m := genMatrix(t, rand.New(rand.NewSource(7)), 12)
	if want := refCost(t, m); res.Solution.Cost != want {
		t.Fatalf("cost %g, want %g", res.Solution.Cost, want)
	}
}

// TestGuardQuarantineBelowMinDevices pins the floor: when quarantining
// the Byzantine chip would shrink the fabric below MinDevices, the
// solve fails with a typed *FabricError that records the quarantine and
// unwraps to the corruption.
func TestGuardQuarantineBelowMinDevices(t *testing.T) {
	sched, err := faultinject.ParseSchedule("linkflip every=1 device=1")
	if err != nil {
		t.Fatal(err)
	}
	sv := mustSolver(t, Options{
		Config:     smallChip(),
		Devices:    2,
		MinDevices: 2,
		Fault:      sched,
		Guard:      poplar.GuardChecksums,
		Cache:      NewPlanCache(),
	})
	m := genMatrix(t, rand.New(rand.NewSource(7)), 12)
	res, err := sv.SolveShards(context.Background(), m) //hunipulint:ignore ctxflow test drives the solve directly
	if err == nil {
		t.Fatal("solve succeeded below MinDevices")
	}
	fab, ok := AsFabric(err)
	if !ok {
		t.Fatalf("error %T is not a FabricError: %v", err, err)
	}
	if len(fab.Quarantined) != 1 || fab.Quarantined[0] != 1 {
		t.Fatalf("FabricError.Quarantined = %v, want [1]", fab.Quarantined)
	}
	if _, ok := faultinject.AsCorruption(err); !ok {
		t.Fatalf("FabricError does not unwrap to the corruption: %v", err)
	}
	if len(res.Quarantined) != 1 {
		t.Fatalf("failed Result.Quarantined = %v, want the quarantine recorded", res.Quarantined)
	}
	if res.Retransmits == 0 {
		t.Fatal("failed Result.Retransmits = 0, want the burned budget recorded")
	}
}

// TestGuardOffCommitsCorruption pins the control: with the guard off a
// silent flip schedule lands in live state, nothing trips, and an
// uncertified wrong answer escapes — while the same schedule under
// GuardChecksums either yields the certified optimum or fails typed.
// The schedule and matrix are a known-escaping pair (found by sweeping
// the fabric corpus); the conformance GuardOff control demonstrates the
// same escape statistically over the whole corpus.
func TestGuardOffCommitsCorruption(t *testing.T) {
	const spec = "seed=804290; bitflip every=3 phase=shard:* times=2"
	m := genMatrix(t, rand.New(rand.NewSource(149)), 13)
	want := refCost(t, m)

	sched, err := faultinject.ParseSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	sv := mustSolver(t, Options{Config: smallChip(), Devices: 2, Fault: sched, Guard: poplar.GuardOff, Cache: NewPlanCache()})
	res, err := sv.SolveShards(context.Background(), m.Clone()) //hunipulint:ignore ctxflow test drives the solve directly
	if err != nil {
		t.Fatalf("the unguarded escape surfaced as an error: %v", err)
	}
	if res.GuardTrips != 0 || res.Retransmits != 0 || len(res.Quarantined) != 0 {
		t.Fatalf("guard off tripped: trips=%d retx=%d quarantined=%v",
			res.GuardTrips, res.Retransmits, res.Quarantined)
	}
	if res.Faults == 0 {
		t.Fatal("flips never fired")
	}
	if res.Solution.Cost == want {
		if verr := lsap.VerifyOptimal(m, res.Solution.Assignment, *res.Solution.Potentials, 1e-6); verr == nil {
			t.Fatal("known-escaping schedule produced a certified optimum; the control lost its teeth")
		}
	}

	// Same schedule, guard armed: the answer is certified optimal or
	// the failure is typed — never a silent wrong answer.
	sched2, err := faultinject.ParseSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	sv2 := mustSolver(t, Options{Config: smallChip(), Devices: 2, Fault: sched2, Guard: poplar.GuardChecksums, Cache: NewPlanCache()})
	res2, err := sv2.SolveShards(context.Background(), m.Clone()) //hunipulint:ignore ctxflow test drives the solve directly
	if err != nil {
		if _, ok := faultinject.AsCorruption(err); !ok {
			if _, ok := faultinject.AsFault(err); !ok {
				t.Fatalf("guarded failure is untyped: %v", err)
			}
		}
	} else {
		if res2.Solution.Cost != want {
			t.Fatalf("guarded solve returned wrong cost %g, want %g", res2.Solution.Cost, want)
		}
		if verr := lsap.VerifyOptimal(m, res2.Solution.Assignment, *res2.Solution.Potentials, 1e-6); verr != nil {
			t.Fatalf("guarded solve uncertified: %v", verr)
		}
	}
}

// TestGuardCyclesCharged pins the cost accounting: an armed guard pays
// modeled GuardCycles on every chip (incremental checksum maintenance
// plus cadence probes), and an unguarded fabric pays none.
func TestGuardCyclesCharged(t *testing.T) {
	on, err := guardSolve(t, "", poplar.GuardParanoid, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	off, err := guardSolve(t, "", poplar.GuardOff, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	for d, s := range on.PerDevice {
		if s.GuardCycles == 0 {
			t.Fatalf("armed chip %d paid no guard cycles", d)
		}
	}
	for d, s := range off.PerDevice {
		if s.GuardCycles != 0 {
			t.Fatalf("unguarded chip %d paid %d guard cycles", d, s.GuardCycles)
		}
	}
	if on.ModeledCycles <= off.ModeledCycles {
		t.Fatalf("guard overhead not visible in the wall clock: %d ≤ %d", on.ModeledCycles, off.ModeledCycles)
	}
}
