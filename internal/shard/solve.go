package shard

import (
	"context"
	"fmt"

	"hunipu/internal/faultinject"
	"hunipu/internal/ipu"
	"hunipu/internal/lsap"
	"hunipu/internal/poplar"
)

// fabric is the set of simulated chips a sharded solve runs on, plus
// the row-block layout. The supervisor (host) executes the algorithm
// natively; the fabric prices what happened and reports faults.
type fabric struct {
	cfg    ipu.Config
	devs   []*ipu.Device
	alive  []bool
	ranges []Span
	step   int64 // fabric superstep counter, monotone for the whole solve
}

func newFabric(cfg ipu.Config, k int, plan *Plan, inj faultinject.Injector) (*fabric, error) {
	f := &fabric{
		cfg:    cfg,
		devs:   make([]*ipu.Device, k),
		alive:  make([]bool, k),
		ranges: append([]Span(nil), plan.Ranges...),
	}
	for d := 0; d < k; d++ {
		dev, err := ipu.NewDevice(cfg)
		if err != nil {
			return nil, err
		}
		dev.SetFabricIndex(d)
		dev.SetInjector(inj)
		f.devs[d] = dev
		f.alive[d] = true
	}
	return f, nil
}

// live returns the number of chips still in the fabric.
func (f *fabric) live() int {
	n := 0
	for _, a := range f.alive {
		if a {
			n++
		}
	}
	return n
}

// root returns the lowest live fabric index — the chip that hosts the
// gather/reduce side of every collective.
func (f *fabric) root() int {
	for d, a := range f.alive {
		if a {
			return d
		}
	}
	return -1
}

// kill removes a chip from the fabric. Its stats freeze where they are.
func (f *fabric) kill(d int) {
	if d >= 0 && d < len(f.alive) {
		f.alive[d] = false
	}
}

// reshard recomputes the row-block layout over the survivors. Post-loss
// layouts are dynamic (they depend on which chip died when), so they
// are computed fresh rather than cached.
func (f *fabric) reshard() {
	n := 0
	for _, s := range f.ranges {
		if s.Hi > n {
			n = s.Hi
		}
	}
	spans := partition(n, f.live())
	si := 0
	for d := range f.ranges {
		if f.alive[d] {
			f.ranges[d] = spans[si]
			si++
		} else {
			f.ranges[d] = Span{}
		}
	}
}

// hostPoint consults the fault schedule at a host-transfer point on
// every live chip, ascending, and returns the first fault.
func (f *fabric) hostPoint(phase string, kind faultinject.Kind) error {
	for d, dev := range f.devs {
		if !f.alive[d] {
			continue
		}
		if fe := dev.CheckFault(phase, kind); fe != nil {
			return fe
		}
	}
	return nil
}

func (f *fabric) statsPerDevice() []ipu.Stats {
	out := make([]ipu.Stats, len(f.devs))
	for d, dev := range f.devs {
		out[d] = dev.Stats()
	}
	return out
}

// modeledCycles is the slowest chip's clock: the fabric advances in
// lockstep, so the laggard sets the pace.
func (f *fabric) modeledCycles() int64 {
	var max int64
	for _, dev := range f.devs {
		if c := dev.Stats().TotalCycles(); c > max {
			max = c
		}
	}
	return max
}

// phaseCharge describes one fabric superstep's cost shape. Collectives
// follow a gather-to-root / broadcast-from-root pattern; every byte
// that crosses chips is charged once, at its receiver, against the
// IPU-Link rate (matching the receiver-side convention of
// ipu.Device.Superstep).
type phaseCharge struct {
	// phase names the superstep for fault schedules and profiles.
	phase string
	// scan charges each chip a full pass over its row block
	// (rows × n slack cells on the chip's tiles).
	scan bool
	// cells adds a flat per-chip cycle count (supervisor-side phases).
	cells int64
	// gather is the flat byte count each non-root chip sends to the
	// root; gatherPerRow adds a per-owned-row amount (candidate lists).
	gather       int64
	gatherPerRow int64
	// scatter is the byte count the root broadcasts to each non-root.
	scatter int64
}

// superstep runs one lockstep fabric superstep: each live chip is asked
// for a fault (ascending fabric order, so replays are deterministic)
// and then charged its share of compute and exchange. A fault aborts
// the superstep — chips after the faulting one are not charged, as they
// would have stalled at the BSP barrier.
//
// This is the sharded solver's per-superstep inner loop, so it is a
// hunipulint hot-path root.
//
//hunipulint:hotpath
func (r *run) superstep(pc phaseCharge) error {
	f := r.f
	n := int64(r.st.n)
	root := f.root()
	live := int64(f.live())

	// Total gather traffic lands on the root; per-sender amounts vary
	// with row ownership, so sum them first.
	var totalGather int64
	for d := range f.devs {
		if !f.alive[d] || d == root {
			continue
		}
		totalGather += pc.gather + pc.gatherPerRow*int64(f.ranges[d].Len())
	}

	for d, dev := range f.devs {
		if !f.alive[d] {
			continue
		}
		if fe := dev.CheckFault(pc.phase, faultinject.KindSuperstep); fe != nil {
			if fe.Silent() {
				// Silent faults don't abort the superstep — they corrupt
				// it. A guarded fabric detects frame classes on receipt
				// and retransmits; block classes land in the chip's row
				// block for the cadence probes to find. applySilent
				// returns an error only when the repair loop itself
				// fails (retransmit exhaustion, or an announced fault
				// arriving mid-retry).
				if err := r.applySilent(d, fe, pc); err != nil {
					return err
				}
			} else {
				r.lastFault = fe
				return fe
			}
		}
		rows := int64(f.ranges[d].Len())
		cells := pc.cells
		if pc.scan {
			cells += rows * n
		}
		var tileCycles map[int]int64
		if cells > 0 {
			tilesUsed := int64(f.cfg.TilesPerIPU)
			if rows > 0 && rows < tilesUsed {
				tilesUsed = rows
			}
			r.tcScratch[0] = (cells + tilesUsed - 1) / tilesUsed
			tileCycles = r.tcScratch
		}
		var in, out, cross int64
		if d == root {
			in = totalGather
			out = (live - 1) * pc.scatter
			cross = totalGather
		} else {
			in = pc.scatter
			out = pc.gather + pc.gatherPerRow*rows
			cross = pc.scatter
		}
		var bytesIn, bytesOut map[int]int64
		if in > 0 {
			r.inScratch[0] = in
			bytesIn = r.inScratch
		}
		if out > 0 {
			r.outScratch[0] = out
			bytesOut = r.outScratch
		}
		dev.Superstep(tileCycles, bytesIn, bytesOut, cross, rows)
	}
	r.flushGuardCharges()
	f.step++
	return nil
}

// runState is the authoritative algorithm state the supervisor holds:
// the sharded slack matrix, the explicit duals that certify the final
// matching, and the Munkres bookkeeping arrays. A checkpoint is a deep
// copy of this struct — one snapshot captures the whole fabric, which
// is what makes the rollback barrier globally consistent.
type runState struct {
	n       int
	s       []float64 // slack, row-major; slack ≡ input − u − v
	u, v    []float64 // dual potentials (the optimality certificate)
	starred []int     // starred[i] = starred column of row i, or -1
	colStar []int     // colStar[j] = starred row of column j, or -1
	primed  []int     // primed[i] = primed column of row i, or -1
	rowCov  []bool
	colCov  []bool
	inited  bool // upload + steps 1–2 complete
}

func newRunState(n int, c *lsap.Matrix) *runState {
	st := &runState{
		n:       n,
		s:       append([]float64(nil), c.Data...),
		u:       make([]float64, n),
		v:       make([]float64, n),
		starred: make([]int, n),
		colStar: make([]int, n),
		primed:  make([]int, n),
		rowCov:  make([]bool, n),
		colCov:  make([]bool, n),
	}
	for i := 0; i < n; i++ {
		st.starred[i] = -1
		st.colStar[i] = -1
		st.primed[i] = -1
	}
	return st
}

func (st *runState) clone() *runState {
	cp := &runState{
		n:       st.n,
		s:       append([]float64(nil), st.s...),
		u:       append([]float64(nil), st.u...),
		v:       append([]float64(nil), st.v...),
		starred: append([]int(nil), st.starred...),
		colStar: append([]int(nil), st.colStar...),
		primed:  append([]int(nil), st.primed...),
		rowCov:  append([]bool(nil), st.rowCov...),
		colCov:  append([]bool(nil), st.colCov...),
		inited:  st.inited,
	}
	return cp
}

// run is one sharded solve in flight.
type run struct {
	sv  *Solver
	f   *fabric
	st  *runState
	res *Result
	c   *lsap.Matrix
	g   *fabricGuard

	// cks is the bounded checkpoint ring: epoch 0 (the pristine input)
	// is pinned, plus up to poplar.GuardRingEpochs recent epochs so
	// certified rollback can walk past poisoned snapshots.
	cks       []*epoch
	ckStep    int64 // fabric superstep of the newest checkpoint
	needWrite bool  // state must be re-uploaded before resuming
	lastFault *faultinject.FaultError

	// Single-key scratch maps reused across superstep charges.
	// ipu.Device.Superstep reads its map arguments synchronously and
	// never retains them, so reuse is safe and saves three map
	// allocations per live chip per superstep.
	tcScratch, inScratch, outScratch map[int]int64
}

// checkpointNow snapshots the state without consulting the schedule
// (used for the free epoch-0 checkpoint of the pristine input). The
// ring keeps epoch 0 pinned and evicts the oldest non-pinned epoch
// beyond poplar.GuardRingEpochs.
func (r *run) checkpointNow() {
	r.cks = append(r.cks, &epoch{st: r.st.clone(), step: r.f.step})
	for len(r.cks) > 1+poplar.GuardRingEpochs {
		copy(r.cks[1:], r.cks[2:])
		r.cks = r.cks[:len(r.cks)-1]
	}
	r.ckStep = r.f.step
	r.res.Checkpoints++
}

// checkpoint takes a cross-device barrier snapshot, charging the
// host-read points so stalls can hit checkpoint traffic too. Under an
// armed guard the blocks are verified first, so every ring epoch is
// certified clean as of its snapshot step.
func (r *run) checkpoint() error {
	if r.g.armed() && r.g.lastVerify != r.f.step {
		if err := r.guardVerify(); err != nil {
			return err
		}
	}
	if err := r.f.hostPoint("shard:ckpt", faultinject.KindHostRead); err != nil {
		r.noteFault(err)
		return err
	}
	r.checkpointNow()
	return nil
}

func (r *run) maybeCheckpoint() error {
	if r.f.step-r.ckStep >= r.sv.ckptEvery {
		return r.checkpoint()
	}
	return nil
}

// restore rewinds the whole fabric to the newest checkpoint. The
// supervisor copy is free; the re-upload of every chip's row block is
// charged (and fault-checked) at the start of the next attempt, and
// the shard checksums are re-baselined from the restored state.
func (r *run) restore() {
	ep := r.cks[len(r.cks)-1]
	r.st = ep.st.clone()
	r.ckStep = ep.step
	r.needWrite = true
	r.g.rebaseline(r)
}

func (r *run) noteFault(err error) {
	if fe, ok := faultinject.AsFault(err); ok {
		r.lastFault = fe
	}
}

// maxSteps is the per-attempt superstep watchdog budget.
func (r *run) maxSteps() int64 {
	if r.sv.maxSteps > 0 {
		return r.sv.maxSteps
	}
	n := int64(r.st.n)
	return 20*n*n + 4096
}

// watchdog converts a wedged attempt (a fault storm that keeps the
// solve from reaching a new checkpoint) into a typed error wrapping the
// last observed fault, so the run still classifies as fault-caused.
func (r *run) watchdog(start int64) error {
	if r.f.step-start <= r.maxSteps() {
		return nil
	}
	cause := error(fmt.Errorf("no fault observed"))
	if r.lastFault != nil {
		cause = r.lastFault
	}
	return r.fabricErr(fmt.Errorf("superstep watchdog tripped after %d supersteps: %w", r.maxSteps(), cause))
}

// fabricErr wraps cause in a *FabricError carrying the fabric's full
// failure context (survivors, losses, quarantines, rollbacks).
func (r *run) fabricErr(cause error) *FabricError {
	return &FabricError{
		Devices:     r.sv.devices,
		Survivors:   r.f.live(),
		MinDevices:  r.sv.minDevices,
		Lost:        append([]int(nil), r.res.LostDevices...),
		Quarantined: append([]int(nil), r.g.quarantined...),
		Rollbacks:   r.res.Rollbacks,
		Err:         cause,
	}
}

// attempt runs the solve from the current state until the matching is
// complete (including the final result download) or a fault surfaces.
func (r *run) attempt(ctx context.Context) error {
	start := r.f.step
	if r.needWrite {
		if err := r.f.hostPoint("shard:rollback", faultinject.KindHostWrite); err != nil {
			r.noteFault(err)
			return err
		}
		r.needWrite = false
	}
	if !r.st.inited {
		if err := r.f.hostPoint("shard:upload", faultinject.KindHostWrite); err != nil {
			r.noteFault(err)
			return err
		}
		if err := r.initSteps(); err != nil {
			return err
		}
		r.st.inited = true
		if err := r.checkpoint(); err != nil {
			return err
		}
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := r.watchdog(start); err != nil {
			return err
		}
		// Guard verification runs at cadence ahead of the checkpoint
		// decision, and the supervisor cross-checks shard summaries
		// against its held duals every outer loop (GuardInvariants and
		// above), so corruption is caught before it can be snapshotted.
		if err := r.maybeGuard(); err != nil {
			return err
		}
		if err := r.crossCheck(); err != nil {
			return err
		}
		// Checkpoints are taken only here, at the top of the outer loop:
		// after an augment the covers and primes are clear, so a restored
		// state is always a valid step-3 entry point. Snapshotting inside
		// the zero-search would capture a mid-search cover pattern that
		// re-running step 3 on resume would silently corrupt.
		if err := r.maybeCheckpoint(); err != nil {
			return err
		}
		done, err := r.step3Cover()
		if err != nil {
			return err
		}
		if done {
			break
		}
		for augmented := false; !augmented; {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := r.watchdog(start); err != nil {
				return err
			}
			// A paranoid fabric verifies mid-search too: the zero search
			// can run many supersteps between outer loops.
			if err := r.maybeGuard(); err != nil {
				return err
			}
			i, j, found, err := r.step4Scan()
			if err != nil {
				return err
			}
			if !found {
				if err := r.step6Update(); err != nil {
					return err
				}
				continue
			}
			r.st.primed[i] = j
			if sj := r.st.starred[i]; sj >= 0 {
				// Starred zero in the primed row: cover the row, free
				// the star's column (broadcast in step4's scatter).
				r.st.rowCov[i] = true
				r.st.colCov[sj] = false
				continue
			}
			if err := r.step5Augment(i, j); err != nil {
				return err
			}
			augmented = true
		}
	}
	if err := r.f.hostPoint("shard:download", faultinject.KindHostRead); err != nil {
		r.noteFault(err)
		return err
	}
	return nil
}

// initSteps runs steps 1–2: row reduction (local per shard), column
// reduction (partial minima gathered, v broadcast), and the greedy
// initial matching (zero candidates gathered, stars broadcast).
func (r *run) initSteps() error {
	st := r.st
	n := st.n
	if err := r.superstep(phaseCharge{phase: "shard:s1_rows", scan: true}); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		row := st.s[i*n : (i+1)*n]
		m := row[0]
		for _, x := range row[1:] {
			if x < m {
				m = x
			}
		}
		for j := range row {
			r.setSlack(i*n+j, row[j]-m)
		}
		st.u[i] += m
	}
	if err := r.superstep(phaseCharge{phase: "shard:s1_cols", scan: true, gather: int64(n) * 8, scatter: int64(n) * 8}); err != nil {
		return err
	}
	for j := 0; j < n; j++ {
		m := st.s[j]
		for i := 1; i < n; i++ {
			if x := st.s[i*n+j]; x < m {
				m = x
			}
		}
		if m != 0 {
			for i := 0; i < n; i++ {
				r.setSlack(i*n+j, st.s[i*n+j]-m)
			}
		}
		st.v[j] += m
	}
	if err := r.superstep(phaseCharge{phase: "shard:s2_star", scan: true, gatherPerRow: 16, scatter: int64(n) * 8}); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if st.s[i*n+j] == 0 && st.starred[i] < 0 && st.colStar[j] < 0 {
				st.starred[i] = j
				st.colStar[j] = i
				break
			}
		}
	}
	return nil
}

// step3Cover covers every starred column and reports completion.
func (r *run) step3Cover() (bool, error) {
	st := r.st
	if err := r.superstep(phaseCharge{phase: "shard:s3_cover", cells: int64(st.n), scatter: int64(st.n)}); err != nil {
		return false, err
	}
	covered := 0
	for j := 0; j < st.n; j++ {
		st.colCov[j] = st.colStar[j] >= 0
		if st.colCov[j] {
			covered++
		}
	}
	return covered == st.n, nil
}

// step4Scan searches every shard for an uncovered zero; candidates are
// gathered and the globally first (row-major, so device-count
// independent) wins.
func (r *run) step4Scan() (int, int, bool, error) {
	st := r.st
	if err := r.superstep(phaseCharge{phase: "shard:s4_scan", scan: true, gather: 16, scatter: 24}); err != nil {
		return 0, 0, false, err
	}
	n := st.n
	for i := 0; i < n; i++ {
		if st.rowCov[i] {
			continue
		}
		for j := 0; j < n; j++ {
			if !st.colCov[j] && st.s[i*n+j] == 0 {
				return i, j, true, nil
			}
		}
	}
	return 0, 0, false, nil
}

// step5Augment flips the alternating star/prime path from (i, j) and
// broadcasts the new matching to every shard.
func (r *run) step5Augment(i, j int) error {
	st := r.st
	n := int64(st.n)
	if err := r.superstep(phaseCharge{phase: "shard:s5_augment", cells: 2 * n, scatter: n * 4}); err != nil {
		return err
	}
	type pos struct{ r, c int }
	path := []pos{{i, j}}
	for {
		sr := st.colStar[path[len(path)-1].c]
		if sr < 0 {
			break
		}
		path = append(path, pos{sr, path[len(path)-1].c})
		path = append(path, pos{sr, st.primed[sr]})
	}
	for k, p := range path {
		if k%2 == 0 { // primed zero → star it
			st.starred[p.r] = p.c
			st.colStar[p.c] = p.r
		}
	}
	for r2 := range st.primed {
		st.primed[r2] = -1
		st.rowCov[r2] = false
	}
	for c2 := range st.colCov {
		st.colCov[c2] = false
	}
	return nil
}

// step6Update finds the global minimum uncovered slack δ (local minima
// gathered, δ broadcast) and applies the dual update: δ joins u on
// uncovered rows and leaves v on covered columns, with the sharded
// slack updated in place so slack ≡ input − u − v is preserved.
func (r *run) step6Update() error {
	st := r.st
	n := st.n
	if err := r.superstep(phaseCharge{phase: "shard:s6_min", scan: true, gather: 8, scatter: 8}); err != nil {
		return err
	}
	min := -1.0
	for i := 0; i < n; i++ {
		if st.rowCov[i] {
			continue
		}
		for j := 0; j < n; j++ {
			if st.colCov[j] {
				continue
			}
			if x := st.s[i*n+j]; min < 0 || x < min {
				min = x
			}
		}
	}
	if min <= 0 {
		// A non-positive δ means the slack matrix itself is inconsistent
		// — on a guarded fabric that is a detection (silent corruption
		// drove a slack negative or zeroed the whole frontier), and it
		// surfaces typed so rollback recovery can handle it. Unguarded,
		// it stays the untyped wedge it always was.
		err := fmt.Errorf("shard: step 6 found no positive uncovered minimum (min = %g)", min)
		if r.g.armed() {
			return r.corruption("fabric:positive-delta", -1, err)
		}
		return err
	}
	if err := r.superstep(phaseCharge{phase: "shard:s6_update", scan: true}); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch {
			case st.rowCov[i] && st.colCov[j]:
				r.setSlack(i*n+j, st.s[i*n+j]+min)
			case !st.rowCov[i] && !st.colCov[j]:
				r.setSlack(i*n+j, st.s[i*n+j]-min)
			}
		}
	}
	for i := 0; i < n; i++ {
		if !st.rowCov[i] {
			st.u[i] += min
		}
	}
	for j := 0; j < n; j++ {
		if st.colCov[j] {
			st.v[j] -= min
		}
	}
	return nil
}

// finish builds the solution and — under an armed guard — runs a final
// block verification and then attests the answer against the pristine
// input via the solver's own dual certificate, so a wrong matching
// cannot escape a guarded fabric. At GuardOff the whole layer,
// attestation included, is disabled: that is the deliberate escape
// hatch the chaos control uses to demonstrate an uncaught wrong answer
// (and the reason hunipu's public surface defaults sharded solves to
// GuardChecksums instead of off).
func (r *run) finish(ctx context.Context) (*lsap.Solution, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if r.g.armed() && r.g.lastVerify != r.f.step {
		if err := r.guardVerify(); err != nil {
			return nil, err
		}
	}
	st := r.st
	a := make(lsap.Assignment, st.n)
	copy(a, st.starred)
	p := &lsap.Potentials{
		U: append([]float64(nil), st.u...),
		V: append([]float64(nil), st.v...),
	}
	if r.g.armed() {
		if err := lsap.VerifyOptimal(r.c, a, *p, r.g.tol); err != nil {
			return nil, r.corruption("shard:attestation", -1, err)
		}
	}
	return &lsap.Solution{Assignment: a, Cost: a.Cost(r.c), Potentials: p}, nil
}
