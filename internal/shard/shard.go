// Package shard solves the LSAP over a fabric of K simulated IPUs by
// row-block sharding the Hungarian algorithm, designed failure-first:
// losing a chip mid-solve is a modeled, recoverable event rather than a
// crash.
//
// The supervisor (host) holds the authoritative algorithm state and
// runs the same six Munkres steps as the CPU baseline, but every step
// is executed as a lockstep fabric superstep: each chip scans only its
// own row block, partial results (column minima, zero candidates, the
// uncovered minimum δ) are gathered to a root chip and the reduction is
// broadcast back — with every byte that crosses chips charged against
// ipu.Config.InterIPUBytesPerCycle, so the IPU-Link is a measured cost,
// not an abstraction.
//
// Failure model. The shared fault schedule is consulted per chip, in
// ascending chip order, at every superstep and host transfer. Announced
// faults split two ways:
//
//   - Transient (linkloss, exchange, stall): every shard rolls back to
//     the last globally consistent superstep checkpoint — a cross-device
//     barrier snapshot of duals, slack, matching and covers — and the
//     solve resumes. Rollbacks are bounded by MaxRetries.
//   - Fatal (deviceloss, reset, memory): the chip is treated as lost
//     for the remainder of the solve. The supervisor re-shards the rows
//     over the K−1 survivors, restores the checkpoint, charges the
//     re-upload, and resumes — or, once the fabric shrinks below
//     MinDevices, fails with a typed *FabricError that wraps the fault
//     so callers (and the chaos harness) classify it exactly as any
//     other injected fault.
//
// Silent fault classes are in scope when Options.Guard arms the fabric
// guard layer (see guard.go): collective frames carry checksums and are
// retransmitted on mismatch, each shard's device-resident row block is
// probed at guard cadence against incremental checksums and the
// supervisor's held duals, and a shard that keeps failing probes — or
// exhausts its retransmit budget — is Byzantine-classified, quarantined
// out of the fabric, and its rows re-sharded over the survivors with a
// certified rollback to the newest checkpoint predating the first
// detection. At GuardOff the layer (final attestation included) is
// disabled, so silent corruption can reach the caller — the measured
// control the chaos harness uses; hunipu's public surface therefore
// defaults sharded solves to GuardChecksums.
//
// Device superstep clocks stay monotone across rollback and re-shard,
// so one-shot schedule rules never refire on a replayed prefix (the
// same convention the single-device recovery path follows).
package shard

import (
	"context"
	"errors"
	"fmt"
	"math"

	"hunipu/internal/faultinject"
	"hunipu/internal/ipu"
	"hunipu/internal/lsap"
	"hunipu/internal/poplar"
)

// DefaultMaxRetries is the rollback budget when Options.MaxRetries is
// zero: transient faults beyond this many checkpoint restores turn into
// a typed *FabricError.
const DefaultMaxRetries = 16

// DefaultCheckpointEvery is the checkpoint cadence in fabric supersteps
// when Options.CheckpointEvery is zero. Shorter than the single-device
// default because a fabric loses more work per rollback: every chip
// rewinds together.
const DefaultCheckpointEvery = 8

// Options configures a sharded solver.
type Options struct {
	// Config describes one chip of the fabric. Its IPUs field is
	// ignored (each fabric member is one chip); the zero value means
	// ipu.MK2().
	Config ipu.Config
	// Devices is the fabric size K (≥ 1; 0 means 1).
	Devices int
	// MinDevices is the smallest fabric the solve may continue on after
	// chip losses (default 1). Below it the solve fails typed.
	MinDevices int
	// Fault is the shared fault injector consulted by every chip
	// (nil = no injection). Schedules with device= predicates target
	// individual chips by their fabric index.
	Fault faultinject.Injector
	// MaxRetries bounds checkpoint rollbacks for transient faults
	// (0 = DefaultMaxRetries, negative = no retries).
	MaxRetries int
	// CheckpointEvery is the checkpoint cadence in fabric supersteps
	// (0 = DefaultCheckpointEvery).
	CheckpointEvery int64
	// MaxSupersteps bounds a single attempt's supersteps as a watchdog
	// against fault-wedged loops (0 = a generous size-derived budget).
	MaxSupersteps int64
	// Cache is the plan cache to use (nil = DefaultCache).
	Cache *PlanCache
	// Guard selects the fabric guard policy for silent-corruption
	// tolerance: checksummed collectives with bounded retransmit, per-
	// shard block probes, quarantine-based re-sharding, and final
	// attestation. The zero value is poplar.GuardOff — everything off,
	// attestation included — which is the deliberate unguarded control;
	// package hunipu resolves sharded solves to GuardChecksums unless
	// the caller explicitly opts out.
	Guard poplar.GuardPolicy
	// MaxRetransmits bounds per-frame retransmit attempts for checksum-
	// detected frame corruption before the sender is quarantined
	// (0 = DefaultMaxRetransmits, negative = no retransmits).
	MaxRetransmits int
}

// Solver is a sharded HunIPU solver. It implements lsap.ContextSolver;
// Solve and SolveContext are safe for concurrent use — each call builds
// its own fabric — though calls sharing one fault Schedule share its
// fire counters, as they would on real shared hardware.
type Solver struct {
	cfg        ipu.Config
	devices    int
	minDevices int
	fault      faultinject.Injector
	maxRetries int
	ckptEvery  int64
	maxSteps   int64
	cache      *PlanCache
	guard      poplar.GuardPolicy
	maxRetx    int
}

// New validates the options and returns a solver.
func New(opts Options) (*Solver, error) {
	cfg := opts.Config
	if cfg == (ipu.Config{}) {
		cfg = ipu.MK2()
	}
	cfg.IPUs = 1
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	k := opts.Devices
	if k == 0 {
		k = 1
	}
	if k < 1 {
		return nil, fmt.Errorf("shard: Devices = %d, want ≥ 1", opts.Devices)
	}
	if k > 1 && cfg.InterIPUBytesPerCycle <= 0 {
		return nil, fmt.Errorf("shard: InterIPUBytesPerCycle = %g with %d devices, want > 0",
			cfg.InterIPUBytesPerCycle, k)
	}
	min := opts.MinDevices
	if min == 0 {
		min = 1
	}
	if min < 1 || min > k {
		return nil, fmt.Errorf("shard: MinDevices = %d, want in [1, %d]", opts.MinDevices, k)
	}
	retries := opts.MaxRetries
	switch {
	case retries == 0:
		retries = DefaultMaxRetries
	case retries < 0:
		retries = 0
	}
	every := opts.CheckpointEvery
	if every <= 0 {
		every = DefaultCheckpointEvery
	}
	cache := opts.Cache
	if cache == nil {
		cache = DefaultCache
	}
	if opts.Guard < poplar.GuardOff || opts.Guard > poplar.GuardParanoid {
		return nil, fmt.Errorf("shard: unknown guard policy %d", opts.Guard)
	}
	retx := opts.MaxRetransmits
	switch {
	case retx == 0:
		retx = DefaultMaxRetransmits
	case retx < 0:
		retx = 0
	}
	return &Solver{
		cfg:        cfg,
		devices:    k,
		minDevices: min,
		fault:      opts.Fault,
		maxRetries: retries,
		ckptEvery:  every,
		maxSteps:   opts.MaxSupersteps,
		cache:      cache,
		guard:      opts.Guard,
		maxRetx:    retx,
	}, nil
}

// Name implements lsap.Solver.
func (sv *Solver) Name() string { return fmt.Sprintf("HunIPU-shard%d", sv.devices) }

// Config returns the resolved per-chip configuration.
func (sv *Solver) Config() ipu.Config { return sv.cfg }

// Solve implements lsap.Solver.
func (sv *Solver) Solve(c *lsap.Matrix) (*lsap.Solution, error) {
	return sv.SolveContext(context.Background(), c)
}

// SolveContext implements lsap.ContextSolver.
func (sv *Solver) SolveContext(ctx context.Context, c *lsap.Matrix) (*lsap.Solution, error) {
	res, err := sv.SolveShards(ctx, c)
	if err != nil {
		return nil, err
	}
	return res.Solution, nil
}

// ReshardEpoch records one live re-sharding: which chip was lost, at
// which fabric superstep, and how many survivors the rows were spread
// back over.
type ReshardEpoch struct {
	// Superstep is the fabric superstep count when the loss was
	// detected.
	Superstep int64
	// Lost is the fabric index of the lost chip.
	Lost int
	// Survivors is the fabric size after the loss.
	Survivors int
	// Quarantined reports whether the chip was removed by the guard
	// layer (Byzantine classification: repeated probe failures or
	// retransmit exhaustion) rather than by an announced fatal fault.
	Quarantined bool
}

// Result is the full report of one sharded solve. It is returned (with
// whatever progress was made) alongside the error when the solve fails,
// so callers can surface lost devices and re-shard epochs either way.
type Result struct {
	// Solution is the certified solution (nil on failure). Its
	// Potentials carry the solver's own optimality certificate.
	Solution *lsap.Solution
	// Devices is the fabric size the solve started with.
	Devices int
	// Survivors is the live fabric size at the end.
	Survivors int
	// LostDevices lists fabric indices lost mid-solve, in loss order.
	LostDevices []int
	// Reshards records each live re-sharding.
	Reshards []ReshardEpoch
	// Rollbacks counts checkpoint restores, whether for announced
	// transient faults or guard-detected corruption.
	Rollbacks int
	// Checkpoints counts cross-device barrier snapshots taken.
	Checkpoints int
	// Faults counts injected faults the fabric observed.
	Faults int
	// GuardTrips counts guard detections: bad collective frames
	// (including corrupted retries), block checksum mismatches,
	// invariant probe failures, and attestation failures.
	GuardTrips int
	// Retransmits counts collective frames moved again after a
	// checksum-detected corruption, each re-priced at the IPU-Link
	// rate.
	Retransmits int
	// RollbackEpochs counts checkpoint epochs discarded as poisoned
	// during certified rollback.
	RollbackEpochs int
	// DetectionLatency is the worst-case supersteps between a silent
	// injection landing in live state and its detection (0 when nothing
	// silent was caught).
	DetectionLatency int64
	// Quarantined lists fabric indices removed by the guard layer, in
	// quarantine order (a subset of LostDevices).
	Quarantined []int
	// Supersteps is the total fabric superstep count, monotone across
	// rollbacks and re-shards.
	Supersteps int64
	// PerDevice holds each chip's modeled execution profile, indexed by
	// fabric index (lost chips keep the stats they accrued).
	PerDevice []ipu.Stats
	// ModeledCycles is the modeled wall clock in device cycles: the
	// slowest chip's total, since the fabric advances in lockstep.
	ModeledCycles int64
	// CachedPlan reports whether the sharding plan came warm from the
	// plan cache.
	CachedPlan bool
}

// FabricError is the typed error a sharded solve fails with when the
// fabric can no longer make progress: too many chips lost, or the
// rollback budget exhausted by transient faults. It wraps the injected
// fault that finished the fabric off, so errors.As against
// *faultinject.FaultError classifies it exactly like any single-device
// fault — the degradation ladder and the chaos harness need no new
// cases.
type FabricError struct {
	// Devices is the fabric size the solve started with.
	Devices int
	// Survivors is the live fabric size at failure.
	Survivors int
	// MinDevices is the configured minimum fabric.
	MinDevices int
	// Lost lists the fabric indices lost before failure.
	Lost []int
	// Quarantined lists the fabric indices the guard layer removed for
	// Byzantine behavior (a subset of Lost).
	Quarantined []int
	// Rollbacks counts checkpoint restores consumed before failure.
	Rollbacks int
	// Err is the underlying cause, usually a *faultinject.FaultError or
	// *faultinject.CorruptionError.
	Err error
}

// Error implements error.
func (e *FabricError) Error() string {
	if len(e.Quarantined) > 0 {
		return fmt.Sprintf("shard: fabric of %d device(s) failed: %d survivor(s) (min %d), lost %v, quarantined %v, %d rollback(s): %v",
			e.Devices, e.Survivors, e.MinDevices, e.Lost, e.Quarantined, e.Rollbacks, e.Err)
	}
	return fmt.Sprintf("shard: fabric of %d device(s) failed: %d survivor(s) (min %d), lost %v, %d rollback(s): %v",
		e.Devices, e.Survivors, e.MinDevices, e.Lost, e.Rollbacks, e.Err)
}

// Unwrap exposes the underlying fault to errors.Is/As.
func (e *FabricError) Unwrap() error { return e.Err }

// AsFabric unwraps err to its fabric report, if any.
func AsFabric(err error) (*FabricError, bool) {
	var fe *FabricError
	if errors.As(err, &fe) {
		return fe, true
	}
	return nil, false
}

// SolveShards runs the sharded solve and returns the full Result. The
// Result is non-nil even on error, carrying lost devices, re-shard
// epochs and per-device stats up to the failure.
func (sv *Solver) SolveShards(ctx context.Context, c *lsap.Matrix) (*Result, error) {
	n := c.N
	res := &Result{Devices: sv.devices, Survivors: sv.devices}
	if n == 0 {
		res.Solution = &lsap.Solution{
			Assignment: lsap.Assignment{},
			Potentials: &lsap.Potentials{U: []float64{}, V: []float64{}},
		}
		return res, nil
	}
	for _, v := range c.Data {
		if v == lsap.Forbidden {
			return res, fmt.Errorf("shard: forbidden edges unsupported; mask costs first")
		}
	}
	if err := sv.cfg.ValidateProblem(n, sv.devices); err != nil {
		return res, err
	}

	snap := sv.cache.Snapshot()
	plan := sv.cache.PlanFor(n, sv.devices, sv.cfg, sv.guard)
	res.CachedPlan = sv.cache.Snapshot().Hits > snap.Hits

	f, err := newFabric(sv.cfg, sv.devices, plan, sv.fault)
	if err != nil {
		return res, err
	}
	var scale float64
	for _, x := range c.Data {
		if ax := math.Abs(x); ax > scale {
			scale = ax
		}
	}
	r := &run{
		sv:  sv,
		f:   f,
		st:  newRunState(n, c),
		res: res,
		c:   c,
		g:   newFabricGuard(sv.guard, sv.devices, 1e-9*(1+scale)),

		tcScratch:  make(map[int]int64, 1),
		inScratch:  make(map[int]int64, 1),
		outScratch: make(map[int]int64, 1),
	}
	r.g.lastVerify = -1
	r.g.rebaseline(r) // upload-time block checksums over the pristine input
	r.checkpointNow() // epoch 0: the pristine state is always restorable

	track := func() {
		res.Survivors = f.live()
		res.Supersteps = f.step
		res.PerDevice = f.statsPerDevice()
		res.ModeledCycles = f.modeledCycles()
		res.GuardTrips = r.g.trips
		res.Retransmits = r.g.retransmits
		res.RollbackEpochs = r.g.rollbackEpochs
		res.DetectionLatency = r.g.maxLatency
		res.Quarantined = append([]int(nil), r.g.quarantined...)
	}
	rollbacks := 0
	var sol *lsap.Solution
	for {
		err := r.attempt(ctx)
		if err == nil {
			// Attestation runs inside the loop so a guard trip at finish
			// time (detected corruption that survived to the answer) goes
			// through the same certified-rollback recovery as any other
			// detection instead of failing the solve outright.
			sol, err = r.finish(ctx)
		}
		track()
		if err == nil {
			break
		}
		if ctx.Err() != nil {
			return res, ctx.Err()
		}
		if _, ok := AsFabric(err); ok {
			// The watchdog already judged the attempt unrecoverable.
			return res, err
		}
		// Guard detections are checked before announced faults: a
		// retransmit-exhaustion corruption wraps the injected fault, so
		// the corruption branch must claim it first.
		if ce, ok := faultinject.AsCorruption(err); ok {
			if rollbacks >= sv.maxRetries {
				return res, r.fabricErr(fmt.Errorf("rollback budget %d exhausted: %w", sv.maxRetries, ce))
			}
			rollbacks++
			res.Rollbacks++
			if d := ce.Device; d >= 0 && d < len(f.alive) && f.alive[d] && r.g.shouldQuarantine(d) {
				// Byzantine classification: the chip keeps producing
				// corrupt frames or failing probes — strike it from the
				// fabric exactly like a lost chip and re-shard.
				f.kill(d)
				r.g.quarantined = append(r.g.quarantined, d)
				res.LostDevices = append(res.LostDevices, d)
				track()
				if f.live() < sv.minDevices {
					return res, r.fabricErr(ce)
				}
				f.reshard()
				res.Reshards = append(res.Reshards, ReshardEpoch{
					Superstep:   f.step,
					Lost:        d,
					Survivors:   f.live(),
					Quarantined: true,
				})
			}
			if rerr := r.rollbackPastPoison(ce); rerr != nil {
				return res, r.fabricErr(fmt.Errorf("no certified checkpoint predates the corruption: %w", rerr))
			}
			track()
			continue
		}
		fe, ok := faultinject.AsFault(err)
		if !ok {
			return res, err
		}
		res.Faults++
		if fe.Transient() {
			if rollbacks >= sv.maxRetries {
				return res, r.fabricErr(fmt.Errorf("rollback budget %d exhausted: %w", sv.maxRetries, fe))
			}
			rollbacks++
			res.Rollbacks++
			r.restore()
			continue
		}
		// Fatal: the chip that reported the fault is gone for the rest
		// of the solve (a reset chip would come back on real hardware,
		// but reintegrating it mid-solve is out of scope — treat every
		// fatal fault as a loss, the conservative reading).
		lost := fe.Point.Device
		f.kill(lost)
		res.LostDevices = append(res.LostDevices, lost)
		if f.live() < sv.minDevices {
			return res, r.fabricErr(fe)
		}
		f.reshard()
		res.Reshards = append(res.Reshards, ReshardEpoch{
			Superstep: f.step,
			Lost:      lost,
			Survivors: f.live(),
		})
		r.restore()
	}

	res.Solution = sol
	track()
	return res, nil
}
