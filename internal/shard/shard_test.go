package shard

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"hunipu/internal/cpuhung"
	"hunipu/internal/faultinject"
	"hunipu/internal/ipu"
	"hunipu/internal/lsap"
	"hunipu/internal/poplar"
)

// smallChip is one chip of the test fabric: Mk2 proportions with a
// reduced tile grid, matching the conformance suites.
func smallChip() ipu.Config {
	cfg := ipu.MK2()
	cfg.IPUs = 1
	cfg.TilesPerIPU = 64
	return cfg
}

func genMatrix(t *testing.T, rng *rand.Rand, n int) *lsap.Matrix {
	t.Helper()
	m := lsap.NewMatrix(n)
	for i := range m.Data {
		m.Data[i] = float64(rng.Intn(1000))
	}
	return m
}

func mustSolver(t *testing.T, opts Options) *Solver {
	t.Helper()
	sv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return sv
}

// certify fails the test unless sol is a certified optimum of m with
// the reference cost.
func certify(t *testing.T, m *lsap.Matrix, sol *lsap.Solution, want float64) {
	t.Helper()
	if sol == nil {
		t.Fatal("nil solution")
	}
	if sol.Potentials == nil {
		t.Fatal("sharded solver must return its own certificate")
	}
	if err := lsap.VerifyOptimal(m, sol.Assignment, *sol.Potentials, 1e-9); err != nil {
		t.Fatalf("certificate: %v", err)
	}
	if sol.Cost != want {
		t.Fatalf("cost = %g, want %g", sol.Cost, want)
	}
}

func refCost(t *testing.T, m *lsap.Matrix) float64 {
	t.Helper()
	ref, err := (cpuhung.JV{}).Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	return ref.Cost
}

// TestShardedMatchesReference certifies the sharded solver against the
// JV reference at K∈{1,2,4} across sizes, including n < K and n not a
// multiple of K.
func TestShardedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, k := range []int{1, 2, 4} {
		sv := mustSolver(t, Options{Config: smallChip(), Devices: k, Cache: NewPlanCache()})
		if want := "HunIPU-shard"; sv.Name()[:len(want)] != want {
			t.Fatalf("Name() = %q", sv.Name())
		}
		for _, n := range []int{1, 2, 3, 7, 16, 33} {
			m := genMatrix(t, rng, n)
			want := refCost(t, m)
			res, err := sv.SolveShards(context.Background(), m)
			if err != nil {
				t.Fatalf("K=%d n=%d: %v", k, n, err)
			}
			certify(t, m, res.Solution, want)
			if res.Devices != k || res.Survivors != k || len(res.LostDevices) != 0 {
				t.Fatalf("K=%d n=%d: fabric report %+v", k, n, res)
			}
			if res.Supersteps == 0 || res.Checkpoints == 0 {
				t.Fatalf("K=%d n=%d: no supersteps/checkpoints recorded: %+v", k, n, res)
			}
		}
	}
}

// TestEmptyMatrix pins the n=0 edge.
func TestEmptyMatrix(t *testing.T) {
	sv := mustSolver(t, Options{Config: smallChip(), Devices: 2, Cache: NewPlanCache()})
	res, err := sv.SolveShards(context.Background(), lsap.NewMatrix(0))
	if err != nil || len(res.Solution.Assignment) != 0 {
		t.Fatalf("n=0: %v %+v", err, res)
	}
}

// TestCrossDeviceTrafficChargedAtLinkRate pins the tentpole's cost
// accounting: a multi-chip solve moves bytes across the IPU-Link
// (gathers and broadcasts), a single-chip solve of the same instance
// moves none, and the link traffic is priced (exchange cycles grow).
func TestCrossDeviceTrafficChargedAtLinkRate(t *testing.T) {
	m := genMatrix(t, rand.New(rand.NewSource(7)), 24)
	perDev := func(k int) []ipu.Stats {
		sv := mustSolver(t, Options{Config: smallChip(), Devices: k, Cache: NewPlanCache()})
		res, err := sv.SolveShards(context.Background(), m.Clone())
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		return res.PerDevice
	}
	solo := perDev(1)
	if solo[0].BytesExchanged != 0 {
		t.Fatalf("K=1 solve exchanged %d bytes; nothing should cross chips", solo[0].BytesExchanged)
	}
	duo := perDev(2)
	var moved int64
	for _, s := range duo {
		moved += s.BytesExchanged
	}
	if moved == 0 {
		t.Fatal("K=2 solve moved no bytes across the fabric")
	}
	if duo[0].ExchangeCycles == 0 {
		t.Fatal("K=2 root chip paid no exchange cycles for the gathers")
	}
}

// TestPlanCacheTopologyIsolation pins the program-cache criterion at
// the shard layer: warm solves reuse the plan for their own topology
// and never share one across topologies — and the guard policy is part
// of the topology fingerprint, so a guarded fabric (whose compiled
// collectives carry frame checksums) never shares a plan with an
// unguarded one.
func TestPlanCacheTopologyIsolation(t *testing.T) {
	cache := NewPlanCache()
	cfg := smallChip()
	p2 := cache.PlanFor(16, 2, cfg, poplar.GuardOff)
	p4 := cache.PlanFor(16, 4, cfg, poplar.GuardOff)
	if p2 == p4 {
		t.Fatal("K=2 and K=4 shared a plan")
	}
	if len(p2.Ranges) != 2 || len(p4.Ranges) != 4 {
		t.Fatalf("plan shapes: %d, %d ranges", len(p2.Ranges), len(p4.Ranges))
	}
	if again := cache.PlanFor(16, 2, cfg, poplar.GuardOff); again != p2 {
		t.Fatal("warm lookup did not reuse the K=2 plan")
	}
	other := cfg
	other.TileMemory *= 2
	if cache.PlanFor(16, 2, other, poplar.GuardOff) == p2 {
		t.Fatal("different chip shape shared a plan")
	}
	p2g := cache.PlanFor(16, 2, cfg, poplar.GuardChecksums)
	if p2g == p2 {
		t.Fatal("guarded and unguarded fabrics shared a plan")
	}
	if cache.PlanFor(16, 2, cfg, poplar.GuardParanoid) == p2g {
		t.Fatal("checksums and paranoid policies shared a plan")
	}
	if again := cache.PlanFor(16, 2, cfg, poplar.GuardChecksums); again != p2g {
		t.Fatal("warm lookup did not reuse the guarded K=2 plan")
	}
	snap := cache.Snapshot()
	if snap.Hits != 2 || snap.Misses != 5 || snap.Size != 5 {
		t.Fatalf("cache counters: %+v", snap)
	}

	// End to end: two warm solves on one topology hit the cache; the
	// other topology stays isolated.
	m := genMatrix(t, rand.New(rand.NewSource(3)), 12)
	e2e := NewPlanCache()
	sv2 := mustSolver(t, Options{Config: cfg, Devices: 2, Cache: e2e})
	sv4 := mustSolver(t, Options{Config: cfg, Devices: 4, Cache: e2e})
	r1, err := sv2.SolveShards(context.Background(), m.Clone())
	if err != nil || r1.CachedPlan {
		t.Fatalf("cold solve: err=%v cached=%v", err, r1.CachedPlan)
	}
	r2, err := sv2.SolveShards(context.Background(), m.Clone())
	if err != nil || !r2.CachedPlan {
		t.Fatalf("warm solve: err=%v cached=%v", err, r2.CachedPlan)
	}
	r3, err := sv4.SolveShards(context.Background(), m.Clone())
	if err != nil || r3.CachedPlan {
		t.Fatalf("other topology must not go warm off K=2: err=%v cached=%v", err, r3.CachedPlan)
	}
}

// TestPartition pins the balanced row-block layout.
func TestPartition(t *testing.T) {
	spans := partition(10, 4)
	want := []Span{{0, 3}, {3, 6}, {6, 8}, {8, 10}}
	for d, s := range spans {
		if s != want[d] {
			t.Fatalf("partition(10,4) = %v, want %v", spans, want)
		}
	}
	for _, s := range partition(2, 4)[2:] {
		if s.Len() != 0 {
			t.Fatalf("partition(2,4) gave rows to a surplus chip: %v", partition(2, 4))
		}
	}
}

// TestDeviceLossResharding is the headline robustness scenario: a K=4
// solve loses one chip mid-run, re-shards onto the 3 survivors, and
// still returns a certified optimum whose report records the lost
// device and the re-shard epoch.
func TestDeviceLossResharding(t *testing.T) {
	m := genMatrix(t, rand.New(rand.NewSource(9)), 24)
	want := refCost(t, m)
	sched, err := faultinject.ParseSchedule("deviceloss at=12 device=2")
	if err != nil {
		t.Fatal(err)
	}
	sv := mustSolver(t, Options{Config: smallChip(), Devices: 4, Fault: sched, Cache: NewPlanCache()})
	res, err := sv.SolveShards(context.Background(), m)
	if err != nil {
		t.Fatalf("solve after device loss: %v", err)
	}
	certify(t, m, res.Solution, want)
	if res.Survivors != 3 {
		t.Fatalf("Survivors = %d, want 3", res.Survivors)
	}
	if len(res.LostDevices) != 1 || res.LostDevices[0] != 2 {
		t.Fatalf("LostDevices = %v, want [2]", res.LostDevices)
	}
	if len(res.Reshards) != 1 {
		t.Fatalf("Reshards = %v, want one epoch", res.Reshards)
	}
	ep := res.Reshards[0]
	if ep.Lost != 2 || ep.Survivors != 3 || ep.Superstep == 0 {
		t.Fatalf("re-shard epoch = %+v", ep)
	}
	if res.Faults == 0 || sched.Fired() == 0 {
		t.Fatal("the scheduled loss never fired")
	}
	// The lost chip's clock froze; survivors kept working past it.
	if res.PerDevice[2].Supersteps >= res.PerDevice[0].Supersteps {
		t.Fatalf("lost chip kept running: %+v", res.PerDevice)
	}
}

// TestSequentialLossesToMinimumFabric loses chips one by one: the solve
// keeps re-sharding until the fabric dips below MinDevices, then fails
// with a FabricError that wraps the fault and names every lost chip.
func TestSequentialLossesToMinimumFabric(t *testing.T) {
	m := genMatrix(t, rand.New(rand.NewSource(11)), 16)
	sched, err := faultinject.ParseSchedule("deviceloss every=6 times=3")
	if err != nil {
		t.Fatal(err)
	}
	sv := mustSolver(t, Options{
		Config: smallChip(), Devices: 4, MinDevices: 3, Fault: sched, Cache: NewPlanCache(),
	})
	res, err := sv.SolveShards(context.Background(), m)
	if err == nil {
		t.Fatal("solve survived below the minimum fabric")
	}
	fabErr, ok := AsFabric(err)
	if !ok {
		t.Fatalf("error = %v, want *FabricError", err)
	}
	if fabErr.Survivors >= fabErr.MinDevices {
		t.Fatalf("FabricError with %d survivors ≥ min %d", fabErr.Survivors, fabErr.MinDevices)
	}
	if len(fabErr.Lost) != len(res.LostDevices) || len(fabErr.Lost) == 0 {
		t.Fatalf("Lost = %v vs report %v", fabErr.Lost, res.LostDevices)
	}
	var fe *faultinject.FaultError
	if !errors.As(err, &fe) || fe.Class != faultinject.DeviceLoss {
		t.Fatalf("FabricError must unwrap to the DeviceLoss fault, got %v", err)
	}
	if res.Solution != nil {
		t.Fatal("failed solve still returned a solution")
	}
}

// TestLinkLossRollsBackAndRecovers pins the transient path: a one-shot
// link loss rolls every shard back to the last checkpoint and the solve
// still certifies.
func TestLinkLossRollsBackAndRecovers(t *testing.T) {
	m := genMatrix(t, rand.New(rand.NewSource(13)), 16)
	want := refCost(t, m)
	sched, err := faultinject.ParseSchedule("linkloss at=10 times=1")
	if err != nil {
		t.Fatal(err)
	}
	sv := mustSolver(t, Options{Config: smallChip(), Devices: 2, Fault: sched, Cache: NewPlanCache()})
	res, err := sv.SolveShards(context.Background(), m)
	if err != nil {
		t.Fatalf("solve after link loss: %v", err)
	}
	certify(t, m, res.Solution, want)
	if res.Rollbacks != 1 || res.Faults != 1 {
		t.Fatalf("Rollbacks = %d, Faults = %d, want 1, 1", res.Rollbacks, res.Faults)
	}
	if res.Survivors != 2 || len(res.LostDevices) != 0 {
		t.Fatalf("link loss must not cost a chip: %+v", res)
	}
}

// TestLinkStormExhaustsRetriesTyped pins the bounded-retry contract: an
// unbounded link storm ends in a typed FabricError, never a hang or an
// untyped failure.
func TestLinkStormExhaustsRetriesTyped(t *testing.T) {
	m := genMatrix(t, rand.New(rand.NewSource(17)), 12)
	sched, err := faultinject.ParseSchedule("linkloss every=1")
	if err != nil {
		t.Fatal(err)
	}
	sv := mustSolver(t, Options{
		Config: smallChip(), Devices: 2, Fault: sched, MaxRetries: 4, Cache: NewPlanCache(),
	})
	res, err := sv.SolveShards(context.Background(), m)
	if err == nil {
		t.Fatal("storm survived an every-superstep link loss")
	}
	fabErr, ok := AsFabric(err)
	if !ok {
		t.Fatalf("error = %v, want *FabricError", err)
	}
	if fabErr.Rollbacks != 4 {
		t.Fatalf("Rollbacks = %d, want the full budget 4", fabErr.Rollbacks)
	}
	var fe *faultinject.FaultError
	if !errors.As(err, &fe) || fe.Class != faultinject.LinkLoss {
		t.Fatalf("FabricError must unwrap to the LinkLoss fault: %v", err)
	}
	if res.Rollbacks != 4 {
		t.Fatalf("report Rollbacks = %d", res.Rollbacks)
	}
}

// TestMonotoneClocksAcrossRollback pins the PR 2 convention at fabric
// scale: a one-shot at= rule consumed before a rollback does not refire
// on the replayed prefix, because superstep clocks never rewind.
func TestMonotoneClocksAcrossRollback(t *testing.T) {
	m := genMatrix(t, rand.New(rand.NewSource(19)), 16)
	want := refCost(t, m)
	sched, err := faultinject.ParseSchedule("linkloss at=9 times=1; linkloss at=11 times=1")
	if err != nil {
		t.Fatal(err)
	}
	sv := mustSolver(t, Options{Config: smallChip(), Devices: 2, Fault: sched, Cache: NewPlanCache()})
	res, err := sv.SolveShards(context.Background(), m)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	certify(t, m, res.Solution, want)
	// Both one-shots fired exactly once each: two rollbacks, two faults.
	if sched.Fired() != 2 || res.Rollbacks != 2 {
		t.Fatalf("Fired = %d, Rollbacks = %d; a rewound clock would refire", sched.Fired(), res.Rollbacks)
	}
}

// TestDeviceScopedFaultHitsOnlyItsShard pins that a device= predicate
// lands on the chip it names: losing device 1 of 2 leaves device 0's
// range running the whole matrix.
func TestDeviceScopedFaultHitsOnlyItsShard(t *testing.T) {
	m := genMatrix(t, rand.New(rand.NewSource(23)), 16)
	want := refCost(t, m)
	sched, err := faultinject.ParseSchedule("deviceloss at=8 device=1")
	if err != nil {
		t.Fatal(err)
	}
	sv := mustSolver(t, Options{Config: smallChip(), Devices: 2, Fault: sched, Cache: NewPlanCache()})
	res, err := sv.SolveShards(context.Background(), m)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	certify(t, m, res.Solution, want)
	if len(res.LostDevices) != 1 || res.LostDevices[0] != 1 || res.Survivors != 1 {
		t.Fatalf("report = %+v, want device 1 lost, 1 survivor", res)
	}
}

// TestCapacityPreflight pins the typed C2 rejection: a fabric whose
// per-chip tile memory cannot hold one row block fails fast with a
// CapacityError, before any superstep runs.
func TestCapacityPreflight(t *testing.T) {
	cfg := smallChip()
	cfg.TilesPerIPU = 2
	cfg.TileMemory = 256
	sv := mustSolver(t, Options{Config: cfg, Devices: 2, Cache: NewPlanCache()})
	res, err := sv.SolveShards(context.Background(), genMatrix(t, rand.New(rand.NewSource(29)), 64))
	if _, ok := ipu.AsCapacity(err); !ok {
		t.Fatalf("error = %v, want *ipu.CapacityError", err)
	}
	if res.Supersteps != 0 {
		t.Fatal("capacity rejection must happen before any superstep")
	}
}

// TestOptionValidation pins New's typed rejections.
func TestOptionValidation(t *testing.T) {
	if _, err := New(Options{Config: smallChip(), Devices: -1}); err == nil {
		t.Error("negative Devices accepted")
	}
	if _, err := New(Options{Config: smallChip(), Devices: 2, MinDevices: 3}); err == nil {
		t.Error("MinDevices > Devices accepted")
	}
	noLink := smallChip()
	noLink.InterIPUBytesPerCycle = 0
	if _, err := New(Options{Config: noLink, Devices: 2}); err == nil {
		t.Error("multi-chip fabric without IPU-Link bandwidth accepted")
	}
	if _, err := New(Options{Config: noLink, Devices: 1}); err != nil {
		t.Errorf("single chip needs no IPU-Link: %v", err)
	}
	// The zero config means MK2.
	sv, err := New(Options{Devices: 2})
	if err != nil || sv.Name() != "HunIPU-shard2" {
		t.Errorf("zero config: %v %v", sv, err)
	}
}

// TestForbiddenRejected pins the masked-edge contract.
func TestForbiddenRejected(t *testing.T) {
	m := lsap.NewMatrix(2)
	m.Data = []float64{1, lsap.Forbidden, 2, 3}
	sv := mustSolver(t, Options{Config: smallChip(), Devices: 2, Cache: NewPlanCache()})
	if _, err := sv.Solve(m); err == nil {
		t.Fatal("forbidden edge accepted")
	}
}

// TestCancellation pins the ContextSolver contract: a cancelled context
// surfaces as the context error, promptly.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sv := mustSolver(t, Options{Config: smallChip(), Devices: 2, Cache: NewPlanCache()})
	_, err := sv.SolveContext(ctx, genMatrix(t, rand.New(rand.NewSource(31)), 16))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}

// TestShardChaosSweep is the package-local chaos invariant: ≥50 random
// shard schedules per K∈{2,4}, every run certified-optimal or typed.
// The conformance suite runs the cross-solver version; this one keeps
// the invariant enforced even when only this package's tests run.
func TestShardChaosSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := genMatrix(t, rand.New(rand.NewSource(6)), 13)
	want := refCost(t, m)
	for _, k := range []int{2, 4} {
		for i := 0; i < 50; i++ {
			sched := faultinject.RandomShardSchedule(rng, k)
			sv := mustSolver(t, Options{
				Config: smallChip(), Devices: k, Fault: sched, MaxRetries: 3, Cache: NewPlanCache(),
			})
			res, err := sv.SolveShards(context.Background(), m.Clone())
			if err != nil {
				var fe *faultinject.FaultError
				if !errors.As(err, &fe) {
					t.Fatalf("K=%d schedule %q: untyped error %v", k, sched.String(), err)
				}
				continue
			}
			certify(t, m, res.Solution, want)
		}
	}
}
