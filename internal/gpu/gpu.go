// Package gpu simulates a CUDA-style SIMT accelerator at the level the
// paper compares against: kernels launched over grids of thread
// blocks, 32-wide warps executing in lockstep, a global-memory
// latency/bandwidth hierarchy, per-kernel launch overhead, and atomic
// operations with serialisation under contention.
//
// Like the IPU simulator, this is a cost-model simulator: kernel
// bodies execute natively in Go (results are exact) while the device
// charges modeled cycles. The architectural effects the paper blames
// for FastHA's gap — warp divergence on variable-candidate scans,
// global-memory latency, and the launch overhead of its many small
// kernels — are all priced here:
//
//   - a warp's time is the maximum of its threads' times plus a
//     divergence penalty proportional to the imbalance between the
//     busiest and idlest lane (lockstep execution);
//   - global accesses charge full latency when uncoalesced and
//     amortised latency when coalesced, and all traffic is bounded by
//     memory bandwidth;
//   - every Launch pays a fixed overhead, so iteration-heavy
//     algorithms pay it thousands of times;
//   - atomics to the same address serialise.
package gpu

import (
	"fmt"
	"time"

	"hunipu/internal/faultinject"
)

// Config describes the simulated GPU.
type Config struct {
	Name string
	// SMs is the number of streaming multiprocessors.
	SMs int
	// WarpSize is the lockstep width (32 on NVIDIA hardware).
	WarpSize int
	// WarpSchedulers is how many warps an SM advances concurrently.
	WarpSchedulers int
	// MaxThreadsPerBlock bounds block size.
	MaxThreadsPerBlock int
	// SharedMemPerBlock is the shared-memory budget of one block, in
	// bytes (A100: up to 164 KiB configurable).
	SharedMemPerBlock int
	// SharedLatency is the cycles of one shared-memory access.
	SharedLatency int64
	// ClockHz converts cycles to modeled seconds.
	ClockHz float64
	// GlobalLatency is the cycles of an uncoalesced global access.
	GlobalLatency int64
	// MemBytesPerCycle is global-memory bandwidth.
	MemBytesPerCycle float64
	// LaunchOverheadCycles is the fixed cost of one kernel launch.
	LaunchOverheadCycles int64
	// AtomicCycles is the cost of one uncontended atomic.
	AtomicCycles int64
	// HostSyncCycles is the cost of a blocking device-to-host readback
	// (cudaMemcpy of a scalar + stream synchronisation), which
	// host-driven Hungarian implementations pay on every branch
	// decision.
	HostSyncCycles int64
	// DivergencePenalty scales the warp imbalance charge: a warp with
	// busiest lane max and idlest lane min costs
	// max + DivergencePenalty·(max−min).
	DivergencePenalty float64
}

// A100 returns a configuration modeled on the NVIDIA A100-40GB the
// paper uses for FastHA: 108 SMs at 1.41 GHz, 1.56 TB/s HBM2.
func A100() Config {
	return Config{
		Name:                 "A100-40GB",
		SMs:                  108,
		WarpSize:             32,
		WarpSchedulers:       4,
		MaxThreadsPerBlock:   1024,
		SharedMemPerBlock:    164 * 1024,
		SharedLatency:        20,
		ClockHz:              1.41e9,
		GlobalLatency:        400,
		MemBytesPerCycle:     1100, // ≈1.55 TB/s at 1.41 GHz
		LaunchOverheadCycles: 5600, // ≈4 µs
		AtomicCycles:         30,
		HostSyncCycles:       14100, // ≈10 µs
		DivergencePenalty:    1.0,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.SMs <= 0:
		return fmt.Errorf("gpu: SMs = %d, want ≥ 1", c.SMs)
	case c.WarpSize <= 0:
		return fmt.Errorf("gpu: WarpSize = %d, want ≥ 1", c.WarpSize)
	case c.WarpSchedulers <= 0:
		return fmt.Errorf("gpu: WarpSchedulers = %d, want ≥ 1", c.WarpSchedulers)
	case c.MaxThreadsPerBlock <= 0:
		return fmt.Errorf("gpu: MaxThreadsPerBlock = %d, want ≥ 1", c.MaxThreadsPerBlock)
	case c.ClockHz <= 0:
		return fmt.Errorf("gpu: ClockHz = %g, want > 0", c.ClockHz)
	case c.MemBytesPerCycle <= 0:
		return fmt.Errorf("gpu: MemBytesPerCycle = %g, want > 0", c.MemBytesPerCycle)
	case c.DivergencePenalty < 0:
		return fmt.Errorf("gpu: DivergencePenalty = %g, want ≥ 0", c.DivergencePenalty)
	}
	return nil
}

// Stats is the accumulated device profile.
type Stats struct {
	Kernels        int64
	Cycles         int64
	ComputeCycles  int64
	MemoryCycles   int64
	LaunchCycles   int64
	BytesAccessed  int64
	Atomics        int64
	DivergedCycles int64
	ThreadsRun     int64
	HostSyncs      int64
}

// Device is a simulated GPU: it prices kernel launches.
type Device struct {
	cfg      Config
	stats    Stats
	injector faultinject.Injector
}

// NewDevice creates a device.
func NewDevice(cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Device{cfg: cfg}, nil
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Stats returns the accumulated profile.
func (d *Device) Stats() Stats { return d.stats }

// ResetClock zeroes the counters (used to exclude setup from timings).
func (d *Device) ResetClock() { d.stats = Stats{} }

// SetInjector installs a fault injector consulted before every kernel
// launch; the launch count plays the role of the superstep clock. Pass
// nil to disable injection.
func (d *Device) SetInjector(inj faultinject.Injector) { d.injector = inj }

// CheckFault asks the injector whether a fault fires at the current
// point, using the completed-kernel count as the superstep coordinate.
func (d *Device) CheckFault(phase string, kind faultinject.Kind) *faultinject.FaultError {
	if d.injector == nil {
		return nil
	}
	return d.injector.Check(faultinject.Point{
		Superstep: d.stats.Kernels,
		Phase:     phase,
		Kind:      kind,
	})
}

// HostSync charges one blocking device-to-host readback: the cost a
// host driver pays to inspect a device scalar before deciding the next
// kernel (FastHA does this every iteration; HunIPU's on-device control
// flow is exactly how the paper avoids it).
func (d *Device) HostSync() {
	d.stats.HostSyncs++
	d.stats.Cycles += d.cfg.HostSyncCycles
}

// ModeledTime converts accumulated cycles to simulated wall time.
func (d *Device) ModeledTime() time.Duration {
	sec := float64(d.stats.Cycles) / d.cfg.ClockHz
	return time.Duration(sec * float64(time.Second))
}

// Kernel is a thread body: it receives the thread's coordinates and a
// charging context and runs native Go over captured slices.
type Kernel func(t *Thread)

// Thread is the per-thread execution context.
type Thread struct {
	// Block is the block index within the grid.
	Block int
	// Idx is the thread index within the block.
	Idx int
	// BlockDim is the number of threads per block.
	BlockDim int
	// GridDim is the number of blocks.
	GridDim int

	cycles  int64
	bytes   int64
	shared  int64
	atomics map[int]int64
	fault   error
	dev     *Device
}

// GlobalID returns Block·BlockDim + Idx.
func (t *Thread) GlobalID() int { return t.Block*t.BlockDim + t.Idx }

// Charge adds n arithmetic cycles.
func (t *Thread) Charge(n int64) { t.cycles += n }

// GlobalCoalesced charges a coalesced global access of n bytes: the
// warp shares one transaction, so latency is amortised over the warp.
func (t *Thread) GlobalCoalesced(n int64) {
	t.bytes += n
	t.cycles += t.dev.cfg.GlobalLatency / int64(t.dev.cfg.WarpSize)
}

// GlobalRandom charges an uncoalesced (data-dependent) global access
// of n bytes at full latency — the pattern the variable-candidate
// steps of the Hungarian algorithm force on GPUs.
func (t *Thread) GlobalRandom(n int64) {
	t.bytes += n
	t.cycles += t.dev.cfg.GlobalLatency
}

// SharedStage charges copying n bytes from global memory into the
// block's shared memory (one cooperative staging pass per block in a
// real kernel — here charged per thread at coalesced cost, and the
// total is validated against the per-block shared budget).
func (t *Thread) SharedStage(n int64) {
	t.shared += n
	if t.shared > int64(t.dev.cfg.SharedMemPerBlock) {
		t.fault = fmt.Errorf("gpu: shared memory overflow: %d > %d bytes",
			t.shared, t.dev.cfg.SharedMemPerBlock)
	}
	t.bytes += n
	t.cycles += t.dev.cfg.GlobalLatency / int64(t.dev.cfg.WarpSize)
}

// SharedLoad charges one shared-memory access: a few cycles, no
// global-memory traffic — the reason real GPU Hungarian kernels cache
// cover flags in shared memory.
func (t *Thread) SharedLoad() {
	t.cycles += t.dev.cfg.SharedLatency / int64(t.dev.cfg.WarpSize)
}

// Atomic charges an atomic operation on the location key; atomics on
// the same key within one launch serialise.
func (t *Thread) Atomic(key int) {
	if t.atomics == nil {
		t.atomics = map[int]int64{}
	}
	t.atomics[key]++
	t.cycles += t.dev.cfg.AtomicCycles
}

// Launch runs a kernel over blocks×threadsPerBlock threads, executing
// bodies sequentially (deterministically) and charging the SIMT cost
// model. It returns the modeled cycles of this launch.
func (d *Device) Launch(name string, blocks, threadsPerBlock int, k Kernel) (int64, error) {
	if blocks <= 0 || threadsPerBlock <= 0 {
		return 0, fmt.Errorf("gpu: launch %q with grid %d×%d", name, blocks, threadsPerBlock)
	}
	if threadsPerBlock > d.cfg.MaxThreadsPerBlock {
		return 0, fmt.Errorf("gpu: launch %q block size %d exceeds max %d",
			name, threadsPerBlock, d.cfg.MaxThreadsPerBlock)
	}
	if fe := d.CheckFault(name, faultinject.KindSuperstep); fe != nil {
		return 0, fe
	}
	cfg := d.cfg
	warpsPerBlock := (threadsPerBlock + cfg.WarpSize - 1) / cfg.WarpSize

	var totalBytes int64
	atomicTotals := map[int]int64{}
	blockTimes := make([]int64, blocks)

	warpCycles := make([]int64, cfg.WarpSize)
	for b := 0; b < blocks; b++ {
		var blockSum, blockMax int64
		for wp := 0; wp < warpsPerBlock; wp++ {
			warpCycles = warpCycles[:0]
			for lane := 0; lane < cfg.WarpSize; lane++ {
				idx := wp*cfg.WarpSize + lane
				if idx >= threadsPerBlock {
					break
				}
				th := Thread{Block: b, Idx: idx, BlockDim: threadsPerBlock, GridDim: blocks, dev: d}
				k(&th)
				if th.fault != nil {
					return 0, fmt.Errorf("gpu: launch %q: %w", name, th.fault)
				}
				warpCycles = append(warpCycles, th.cycles)
				totalBytes += th.bytes
				for key, c := range th.atomics {
					atomicTotals[key] += c
				}
				d.stats.ThreadsRun++
			}
			var wMax, wMin int64
			if len(warpCycles) > 0 {
				wMax, wMin = warpCycles[0], warpCycles[0]
				for _, c := range warpCycles[1:] {
					if c > wMax {
						wMax = c
					}
					if c < wMin {
						wMin = c
					}
				}
			}
			diverged := int64(cfg.DivergencePenalty * float64(wMax-wMin))
			d.stats.DivergedCycles += diverged
			wt := wMax + diverged
			blockSum += wt
			if wt > blockMax {
				blockMax = wt
			}
		}
		// Warps share the SM's schedulers; a block cannot finish faster
		// than its slowest warp.
		bt := blockSum / int64(cfg.WarpSchedulers)
		if bt < blockMax {
			bt = blockMax
		}
		blockTimes[b] = bt
	}

	// Blocks are scheduled over the SMs in waves.
	var compute int64
	for lo := 0; lo < blocks; lo += cfg.SMs {
		hi := lo + cfg.SMs
		if hi > blocks {
			hi = blocks
		}
		var waveMax int64
		for _, bt := range blockTimes[lo:hi] {
			if bt > waveMax {
				waveMax = bt
			}
		}
		compute += waveMax
	}

	// Atomic serialisation: contended addresses bottleneck the kernel.
	var atomicSerial int64
	var atomicCount int64
	for _, c := range atomicTotals {
		atomicCount += c
		if s := c * cfg.AtomicCycles; s > atomicSerial {
			atomicSerial = s
		}
	}
	if atomicSerial > compute {
		compute = atomicSerial
	}

	memory := int64(float64(totalBytes) / cfg.MemBytesPerCycle)
	body := compute
	if memory > body {
		body = memory
	}
	total := cfg.LaunchOverheadCycles + body

	d.stats.Kernels++
	d.stats.Cycles += total
	d.stats.ComputeCycles += compute
	d.stats.MemoryCycles += memory
	d.stats.LaunchCycles += cfg.LaunchOverheadCycles
	d.stats.BytesAccessed += totalBytes
	d.stats.Atomics += atomicCount
	return total, nil
}
