package gpu

import (
	"errors"
	"testing"

	"hunipu/internal/faultinject"
)

func TestLaunchInjection(t *testing.T) {
	d, err := NewDevice(A100())
	if err != nil {
		t.Fatal(err)
	}
	sched, err := faultinject.ParseSchedule("reset at=2")
	if err != nil {
		t.Fatal(err)
	}
	d.SetInjector(sched)
	noop := func(t *Thread) {}
	for k := 0; k < 5; k++ {
		_, err := d.Launch("step", 1, 32, noop)
		if k == 2 {
			var fe *faultinject.FaultError
			if !errors.As(err, &fe) || fe.Class != faultinject.DeviceReset {
				t.Fatalf("launch %d: err = %v, want DeviceReset fault", k, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("launch %d: %v", k, err)
		}
	}
	// A faulted launch must not advance the kernel clock.
	if got := d.Stats().Kernels; got != 4 {
		t.Fatalf("Kernels = %d, want 4", got)
	}
}

func TestLaunchStallAppliesToHostKinds(t *testing.T) {
	d, err := NewDevice(A100())
	if err != nil {
		t.Fatal(err)
	}
	sched, err := faultinject.ParseSchedule("stall times=-1")
	if err != nil {
		t.Fatal(err)
	}
	d.SetInjector(sched)
	// Stall rules guard host transfers, not kernel launches.
	if _, err := d.Launch("step", 1, 32, func(t *Thread) {}); err != nil {
		t.Fatalf("stall rule fired on a kernel launch: %v", err)
	}
	if fe := d.CheckFault("host:read", faultinject.KindHostRead); fe == nil {
		t.Fatal("stall rule did not fire on a host read")
	}
}
