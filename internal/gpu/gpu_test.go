package gpu

import (
	"testing"
	"testing/quick"
)

func TestA100Config(t *testing.T) {
	cfg := A100()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.SMs != 108 || cfg.WarpSize != 32 {
		t.Fatalf("unexpected A100 shape: %+v", cfg)
	}
}

func TestConfigValidate(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.SMs = 0 },
		func(c *Config) { c.WarpSize = 0 },
		func(c *Config) { c.WarpSchedulers = 0 },
		func(c *Config) { c.MaxThreadsPerBlock = 0 },
		func(c *Config) { c.ClockHz = 0 },
		func(c *Config) { c.MemBytesPerCycle = 0 },
		func(c *Config) { c.DivergencePenalty = -1 },
	}
	for i, mutate := range mutations {
		cfg := A100()
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestLaunchExecutesAllThreads(t *testing.T) {
	d, err := NewDevice(A100())
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 256)
	if _, err := d.Launch("fill", 4, 64, func(th *Thread) {
		out[th.GlobalID()] = float64(th.GlobalID())
		th.Charge(1)
		th.GlobalCoalesced(8)
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != float64(i) {
			t.Fatalf("out[%d] = %g", i, v)
		}
	}
	s := d.Stats()
	if s.ThreadsRun != 256 || s.Kernels != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.BytesAccessed != 256*8 {
		t.Fatalf("BytesAccessed = %d", s.BytesAccessed)
	}
}

func TestLaunchValidation(t *testing.T) {
	d, _ := NewDevice(A100())
	if _, err := d.Launch("bad", 0, 32, func(*Thread) {}); err == nil {
		t.Fatal("zero blocks accepted")
	}
	if _, err := d.Launch("bad", 1, 4096, func(*Thread) {}); err == nil {
		t.Fatal("oversized block accepted")
	}
}

func TestLaunchOverheadDominatesSmallKernels(t *testing.T) {
	d, _ := NewDevice(A100())
	cyc, err := d.Launch("tiny", 1, 1, func(th *Thread) { th.Charge(1) })
	if err != nil {
		t.Fatal(err)
	}
	if cyc < A100().LaunchOverheadCycles {
		t.Fatalf("launch cost %d below fixed overhead", cyc)
	}
}

func TestDivergencePenalty(t *testing.T) {
	// A warp where one lane works 1000 cycles and the rest are idle
	// must cost more than a uniform warp at 1000 cycles each.
	cfg := A100()
	dUnequal, _ := NewDevice(cfg)
	dUniform, _ := NewDevice(cfg)
	unequal, _ := dUnequal.Launch("u", 1, 32, func(th *Thread) {
		if th.Idx == 0 {
			th.Charge(1000)
		}
	})
	uniform, _ := dUniform.Launch("e", 1, 32, func(th *Thread) { th.Charge(1000) })
	if unequal <= uniform {
		t.Fatalf("divergent warp (%d) should cost more than uniform (%d)", unequal, uniform)
	}
	if dUnequal.Stats().DivergedCycles == 0 {
		t.Fatal("diverged cycles not recorded")
	}
}

func TestCoalescedVsRandomAccess(t *testing.T) {
	cfg := A100()
	dc, _ := NewDevice(cfg)
	dr, _ := NewDevice(cfg)
	coal, _ := dc.Launch("c", 1, 32, func(th *Thread) {
		for i := 0; i < 100; i++ {
			th.GlobalCoalesced(4)
		}
	})
	rnd, _ := dr.Launch("r", 1, 32, func(th *Thread) {
		for i := 0; i < 100; i++ {
			th.GlobalRandom(4)
		}
	})
	if rnd <= coal {
		t.Fatalf("random access (%d) should cost more than coalesced (%d)", rnd, coal)
	}
}

func TestAtomicContentionSerialises(t *testing.T) {
	cfg := A100()
	dSame, _ := NewDevice(cfg)
	dDiff, _ := NewDevice(cfg)
	same, _ := dSame.Launch("same", 32, 32, func(th *Thread) { th.Atomic(0) })
	diff, _ := dDiff.Launch("diff", 32, 32, func(th *Thread) { th.Atomic(th.GlobalID()) })
	if same <= diff {
		t.Fatalf("contended atomics (%d) should cost more than spread (%d)", same, diff)
	}
	if dSame.Stats().Atomics != 1024 {
		t.Fatalf("atomics = %d", dSame.Stats().Atomics)
	}
}

func TestWaveScheduling(t *testing.T) {
	// 2·SMs blocks of equal work should take ~2× the cycles of SMs
	// blocks (two waves), ignoring the fixed launch overhead.
	cfg := A100()
	d1, _ := NewDevice(cfg)
	d2, _ := NewDevice(cfg)
	work := func(th *Thread) { th.Charge(10000) }
	one, _ := d1.Launch("w1", cfg.SMs, 32, work)
	two, _ := d2.Launch("w2", 2*cfg.SMs, 32, work)
	oneBody := one - cfg.LaunchOverheadCycles
	twoBody := two - cfg.LaunchOverheadCycles
	if twoBody != 2*oneBody {
		t.Fatalf("two waves = %d, want %d", twoBody, 2*oneBody)
	}
}

func TestBandwidthBound(t *testing.T) {
	// A kernel streaming far more bytes than compute must be memory
	// bound: body time ≈ bytes / bandwidth.
	cfg := A100()
	d, _ := NewDevice(cfg)
	total, _ := d.Launch("stream", cfg.SMs, 256, func(th *Thread) {
		th.GlobalCoalesced(1 << 20) // 1 MiB per thread, 1 cycle compute
		th.Charge(1)
	})
	bytes := int64(cfg.SMs) * 256 << 20
	wantMin := int64(float64(bytes) / cfg.MemBytesPerCycle)
	if total < wantMin {
		t.Fatalf("memory-bound kernel %d cycles, want ≥ %d", total, wantMin)
	}
	if d.Stats().MemoryCycles < d.Stats().ComputeCycles {
		t.Fatal("kernel should be memory bound")
	}
}

func TestModeledTimeAndReset(t *testing.T) {
	cfg := A100()
	d, _ := NewDevice(cfg)
	d.Launch("k", 1, 1, func(th *Thread) { th.Charge(int64(cfg.ClockHz)) }) //nolint:errcheck
	if ms := d.ModeledTime().Milliseconds(); ms < 990 || ms > 1100 {
		t.Fatalf("ModeledTime ≈ %dms, want ~1000ms", ms)
	}
	d.ResetClock()
	if d.Stats().Cycles != 0 {
		t.Fatal("reset failed")
	}
}

// Property: launches are deterministic — same kernel, same cycles.
func TestLaunchDeterministicProperty(t *testing.T) {
	f := func(work uint16, blocks uint8) bool {
		b := int(blocks)%8 + 1
		k := func(th *Thread) { th.Charge(int64(work) + int64(th.Idx%7)) }
		d1, _ := NewDevice(A100())
		d2, _ := NewDevice(A100())
		c1, err1 := d1.Launch("p", b, 64, k)
		c2, err2 := d2.Launch("p", b, 64, k)
		return err1 == nil && err2 == nil && c1 == c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHostSyncCharges(t *testing.T) {
	cfg := A100()
	d, _ := NewDevice(cfg)
	d.HostSync()
	d.HostSync()
	s := d.Stats()
	if s.HostSyncs != 2 {
		t.Fatalf("HostSyncs = %d, want 2", s.HostSyncs)
	}
	if s.Cycles != 2*cfg.HostSyncCycles {
		t.Fatalf("Cycles = %d, want %d", s.Cycles, 2*cfg.HostSyncCycles)
	}
}

func TestSharedMemoryModel(t *testing.T) {
	cfg := A100()
	// Shared loads cost far less than uncoalesced global loads.
	dShared, _ := NewDevice(cfg)
	dGlobal, _ := NewDevice(cfg)
	sh, err := dShared.Launch("s", 1, 32, func(th *Thread) {
		th.SharedStage(4096)
		for i := 0; i < 1000; i++ {
			th.SharedLoad()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	gl, _ := dGlobal.Launch("g", 1, 32, func(th *Thread) {
		for i := 0; i < 1000; i++ {
			th.GlobalRandom(4)
		}
	})
	if sh >= gl {
		t.Fatalf("shared path (%d) should beat global path (%d)", sh, gl)
	}
	// Overflowing the per-block budget fails the launch.
	dOver, _ := NewDevice(cfg)
	if _, err := dOver.Launch("o", 1, 1, func(th *Thread) {
		th.SharedStage(int64(cfg.SharedMemPerBlock) + 1)
	}); err == nil {
		t.Fatal("shared overflow accepted")
	}
}
