package ipu

import (
	"errors"
	"testing"

	"hunipu/internal/faultinject"
)

// fabricConfig returns an MK2-derived config with k chips and a small
// tile grid so per-tile arithmetic stays easy to reason about.
func fabricConfig(k int) Config {
	cfg := MK2()
	cfg.IPUs = k
	cfg.TilesPerIPU = 64
	return cfg
}

// TestCrossIPUChargedAtLinkRate pins the exchange-pricing formula in
// Device.Superstep for K∈{1,2,4}: bytes flagged as crossing chips are
// charged against InterIPUBytesPerCycle (amortised over the fabric's
// tile count), on top of — never instead of — the on-chip port cost.
func TestCrossIPUChargedAtLinkRate(t *testing.T) {
	for _, k := range []int{1, 2, 4} {
		cfg := fabricConfig(k)
		d, err := NewDevice(cfg)
		if err != nil {
			t.Fatal(err)
		}
		const maxBytes, cross = int64(8192), int64(1 << 20)
		d.Superstep(nil, map[int]int64{0: maxBytes}, nil, cross, 0)

		want := cfg.ExchangeLatencyCycles +
			int64(float64(maxBytes)/cfg.ExchangeBytesPerCycle) +
			int64(float64(cross)/float64(cfg.Tiles())/cfg.InterIPUBytesPerCycle)
		if got := d.Stats().ExchangeCycles; got != want {
			t.Errorf("K=%d: ExchangeCycles = %d, want %d", k, got, want)
		}
	}
}

// TestIntraIPUNotChargedAtLinkRate pins the complement: the same
// traffic with crossIPUBytes=0 pays only the on-chip exchange rate,
// regardless of how many chips the fabric has.
func TestIntraIPUNotChargedAtLinkRate(t *testing.T) {
	for _, k := range []int{1, 2, 4} {
		cfg := fabricConfig(k)
		d, err := NewDevice(cfg)
		if err != nil {
			t.Fatal(err)
		}
		const maxBytes = int64(8192)
		d.Superstep(nil, map[int]int64{0: maxBytes}, nil, 0, 0)

		want := cfg.ExchangeLatencyCycles +
			int64(float64(maxBytes)/cfg.ExchangeBytesPerCycle)
		if got := d.Stats().ExchangeCycles; got != want {
			t.Errorf("K=%d: ExchangeCycles = %d, want %d (no IPU-Link term)", k, got, want)
		}
	}
}

// TestCrossIPUAmortisedOverTiles pins that the IPU-Link term divides by
// the whole fabric's tile count: the same cross-chip byte volume gets
// cheaper per superstep as chips (and thus link ports) are added.
func TestCrossIPUAmortisedOverTiles(t *testing.T) {
	cost := func(k int) int64 {
		d, err := NewDevice(fabricConfig(k))
		if err != nil {
			t.Fatal(err)
		}
		d.Superstep(nil, map[int]int64{0: 1}, nil, 1<<22, 0)
		return d.Stats().ExchangeCycles
	}
	c1, c2, c4 := cost(1), cost(2), cost(4)
	if !(c1 > c2 && c2 > c4) {
		t.Fatalf("cross-IPU cost should shrink with fabric size: K=1:%d K=2:%d K=4:%d", c1, c2, c4)
	}
}

func TestValidateProblemFits(t *testing.T) {
	cfg := MK2()
	cfg.IPUs = 4
	// n=4096 over 4 shards → 1024 rows/shard → 1 row/tile on 1472
	// tiles → 4096·8 = 32 KiB per tile, well inside 624 KiB.
	if err := cfg.ValidateProblem(4096, 4); err != nil {
		t.Fatalf("ValidateProblem(4096, 4) = %v", err)
	}
	// n ≤ 0 is not a capacity question.
	if err := cfg.ValidateProblem(0, 4); err != nil {
		t.Fatalf("ValidateProblem(0, 4) = %v", err)
	}
}

func TestValidateProblemRejectsOversize(t *testing.T) {
	cfg := MK2()
	cfg.IPUs = 2
	cfg.TilesPerIPU = 4
	cfg.TileMemory = 4096
	// n=128 over 2 shards → 64 rows/shard → 16 rows/tile →
	// 16·128·8 = 16384 bytes > 4096 budget.
	err := cfg.ValidateProblem(128, 2)
	ce, ok := AsCapacity(err)
	if !ok {
		t.Fatalf("ValidateProblem = %v, want *CapacityError", err)
	}
	if ce.N != 128 || ce.Shards != 2 || ce.RowsPerTile != 16 ||
		ce.NeedBytes != 16384 || ce.TileMemory != 4096 {
		t.Fatalf("CapacityError fields = %+v", ce)
	}
	if ce.Constraint != "C2 tile memory" {
		t.Fatalf("Constraint = %q, want the C2 name", ce.Constraint)
	}
	// More shards spread the same rows thinner and fit again.
	cfg.IPUs = 8
	if err := cfg.ValidateProblem(128, 8); err != nil {
		t.Fatalf("ValidateProblem(128, 8) = %v", err)
	}
}

func TestValidateProblemDefaultsShardsToIPUs(t *testing.T) {
	cfg := MK2()
	cfg.IPUs = 2
	cfg.TilesPerIPU = 4
	cfg.TileMemory = 4096
	got := cfg.ValidateProblem(128, 0)
	want := cfg.ValidateProblem(128, 2)
	if (got == nil) != (want == nil) {
		t.Fatalf("shards=0 (%v) should behave like shards=IPUs (%v)", got, want)
	}
	ce, ok := AsCapacity(got)
	if !ok || ce.Shards != 2 {
		t.Fatalf("shards=0 error = %v, want Shards=2 in report", got)
	}
}

func TestValidateProblemChecksConfigFirst(t *testing.T) {
	cfg := MK2()
	cfg.TilesPerIPU = 0
	if err := cfg.ValidateProblem(16, 1); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// TestFabricIndexTargetsDeviceRules pins the device= predicate wiring:
// a rule scoped to device 1 must fire only on the fabric member with
// that index, and the index must ride along in the FaultError.
func TestFabricIndexTargetsDeviceRules(t *testing.T) {
	sched, err := faultinject.ParseSchedule("deviceloss at=0 device=1")
	if err != nil {
		t.Fatal(err)
	}
	devices := make([]*Device, 3)
	for i := range devices {
		d, err := NewDevice(fabricConfig(len(devices)))
		if err != nil {
			t.Fatal(err)
		}
		d.SetFabricIndex(i)
		d.SetInjector(sched)
		devices[i] = d
	}
	for i, d := range devices {
		if got := d.FabricIndex(); got != i {
			t.Fatalf("FabricIndex() = %d, want %d", got, i)
		}
		fe := d.CheckFault("shard:s4_scan", faultinject.KindSuperstep)
		if (fe != nil) != (i == 1) {
			t.Fatalf("device %d: fault = %v, want fire only on device 1", i, fe)
		}
		if i == 1 {
			if fe.Class != faultinject.DeviceLoss || fe.Point.Device != 1 {
				t.Fatalf("fault = %+v, want DeviceLoss on device 1", fe)
			}
			var target *faultinject.FaultError
			if !errors.As(fe, &target) {
				t.Fatal("FaultError must stay errors.As-matchable")
			}
		}
	}
}

// Devices outside a fabric report index 0, so pre-sharding schedules
// (which never mention device=) keep matching them.
func TestDefaultFabricIndexIsZero(t *testing.T) {
	d, err := NewDevice(MK2())
	if err != nil {
		t.Fatal(err)
	}
	if d.FabricIndex() != 0 {
		t.Fatalf("fresh device FabricIndex = %d", d.FabricIndex())
	}
	sched, err := faultinject.ParseSchedule("exchange at=0")
	if err != nil {
		t.Fatal(err)
	}
	d.SetInjector(sched)
	fe := d.CheckFault("phase", faultinject.KindSuperstep)
	if fe == nil || fe.Point.Device != 0 {
		t.Fatalf("fault = %+v, want device-0 point", fe)
	}
}
