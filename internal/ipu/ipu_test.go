package ipu

import (
	"testing"
	"testing/quick"
)

func TestMK2Config(t *testing.T) {
	cfg := MK2()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Tiles() != 1472 {
		t.Fatalf("Tiles() = %d, want 1472", cfg.Tiles())
	}
	if cfg.ThreadsPerTile != 6 {
		t.Fatalf("ThreadsPerTile = %d, want 6", cfg.ThreadsPerTile)
	}
	if cfg.TileMemory != 624*1024 {
		t.Fatalf("TileMemory = %d, want 624 KiB", cfg.TileMemory)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.IPUs = 0 },
		func(c *Config) { c.TilesPerIPU = -1 },
		func(c *Config) { c.ThreadsPerTile = 0 },
		func(c *Config) { c.TileMemory = 0 },
		func(c *Config) { c.ClockHz = 0 },
		func(c *Config) { c.ExchangeBytesPerCycle = 0 },
		func(c *Config) { c.IPUs = 2; c.InterIPUBytesPerCycle = 0 },
		func(c *Config) { c.IPUs = 4; c.InterIPUBytesPerCycle = -0.5 },
		func(c *Config) { c.SyncCycles = -1 },
		func(c *Config) { c.ExchangeLatencyCycles = -1 },
		func(c *Config) { c.VertexOverheadCycles = -1 },
	}
	for i, mutate := range bad {
		cfg := MK2()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: bad config validated", i)
		}
	}
	// Single-chip configs never touch the IPU-Link, so a zero inter-IPU
	// bandwidth is fine there; zero fixed cycle costs are also legal.
	good := []func(*Config){
		func(c *Config) { c.IPUs = 1; c.InterIPUBytesPerCycle = 0 },
		func(c *Config) { c.SyncCycles = 0; c.ExchangeLatencyCycles = 0; c.VertexOverheadCycles = 0 },
	}
	for i, mutate := range good {
		cfg := MK2()
		mutate(&cfg)
		if err := cfg.Validate(); err != nil {
			t.Errorf("good case %d: %v", i, err)
		}
	}
}

func TestIPUOf(t *testing.T) {
	cfg := MK2()
	cfg.IPUs = 4
	if got := cfg.IPUOf(0); got != 0 {
		t.Fatalf("IPUOf(0) = %d", got)
	}
	if got := cfg.IPUOf(1471); got != 0 {
		t.Fatalf("IPUOf(1471) = %d", got)
	}
	if got := cfg.IPUOf(1472); got != 1 {
		t.Fatalf("IPUOf(1472) = %d", got)
	}
	if got := cfg.IPUOf(4*1472 - 1); got != 3 {
		t.Fatalf("IPUOf(last) = %d", got)
	}
}

func TestAllocAccounting(t *testing.T) {
	d, err := NewDevice(MK2())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Alloc(0, 600*1024); err != nil {
		t.Fatal(err)
	}
	if err := d.Alloc(0, 100*1024); err == nil {
		t.Fatal("allocation past 624 KiB must fail (C2)")
	}
	if err := d.Alloc(1, 100*1024); err != nil {
		t.Fatalf("other tiles unaffected: %v", err)
	}
	if d.Allocated(0) != 600*1024 {
		t.Fatalf("Allocated(0) = %d", d.Allocated(0))
	}
	if d.MaxAllocated() != 600*1024 {
		t.Fatalf("MaxAllocated = %d", d.MaxAllocated())
	}
	if err := d.Alloc(-1, 1); err == nil {
		t.Fatal("negative tile accepted")
	}
	if err := d.Alloc(99999, 1); err == nil {
		t.Fatal("out-of-range tile accepted")
	}
	if err := d.Alloc(1, -5); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestSuperstepChargesSlowestTile(t *testing.T) {
	d, _ := NewDevice(MK2())
	d.Superstep(map[int]int64{0: 100, 1: 900, 2: 50}, nil, nil, 0, 3)
	s := d.Stats()
	if s.ComputeCycles != 900 {
		t.Fatalf("ComputeCycles = %d, want 900 (max tile, C3)", s.ComputeCycles)
	}
	if s.SyncCycles != MK2().SyncCycles {
		t.Fatalf("SyncCycles = %d", s.SyncCycles)
	}
	if s.ExchangeCycles != 0 {
		t.Fatalf("ExchangeCycles = %d, want 0 with no traffic", s.ExchangeCycles)
	}
	if s.Supersteps != 1 || s.VerticesRun != 3 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSuperstepExchangeCost(t *testing.T) {
	cfg := MK2()
	d, _ := NewDevice(cfg)
	// Tile 3 receives 4096 bytes that tiles 5 and 7 send (2048 each):
	// the phase is gated by the busiest port (tile 3's 4096 in), and
	// the traffic total counts each byte once (receiver side).
	in := map[int]int64{3: 4096}
	out := map[int]int64{5: 2048, 7: 2048}
	d.Superstep(nil, in, out, 0, 0)
	s := d.Stats()
	want := cfg.ExchangeLatencyCycles + int64(4096/cfg.ExchangeBytesPerCycle)
	if s.ExchangeCycles != want {
		t.Fatalf("ExchangeCycles = %d, want %d", s.ExchangeCycles, want)
	}
	if s.BytesExchanged != 4096 {
		t.Fatalf("BytesExchanged = %d, want 4096", s.BytesExchanged)
	}
}

func TestSuperstepCrossIPUIsSlower(t *testing.T) {
	cfg := MK2()
	cfg.IPUs = 2
	dOn, _ := NewDevice(cfg)
	dOff, _ := NewDevice(cfg)
	traffic := map[int]int64{0: 1 << 20}
	dOn.Superstep(nil, traffic, nil, 0, 0)
	dOff.Superstep(nil, traffic, nil, 1<<20, 0)
	if dOff.Stats().ExchangeCycles <= dOn.Stats().ExchangeCycles {
		t.Fatalf("cross-IPU exchange (%d) should cost more than on-chip (%d)",
			dOff.Stats().ExchangeCycles, dOn.Stats().ExchangeCycles)
	}
}

func TestTileTimeBarrelModel(t *testing.T) {
	cfg := MK2()
	// One vertex of w cycles occupies 6·(w+overhead) device cycles.
	w := int64(1000)
	one := cfg.TileTime([]int64{w})
	if one != 6*(w+cfg.VertexOverheadCycles) {
		t.Fatalf("TileTime(1 vertex) = %d", one)
	}
	// Six equal vertices on six threads take the same wall time as one:
	// this is the "six threads for free" property the paper exploits.
	six := cfg.TileTime([]int64{w, w, w, w, w, w})
	if six != one {
		t.Fatalf("TileTime(6 equal vertices) = %d, want %d", six, one)
	}
	// A seventh vertex wraps onto thread 0 and doubles its load.
	seven := cfg.TileTime([]int64{w, w, w, w, w, w, w})
	if seven != 2*one {
		t.Fatalf("TileTime(7 vertices) = %d, want %d", seven, 2*one)
	}
	if cfg.TileTime(nil) != 0 {
		t.Fatal("empty tile should cost 0")
	}
}

func TestModeledTimeAndReset(t *testing.T) {
	d, _ := NewDevice(MK2())
	d.Superstep(map[int]int64{0: 1_325_000_000}, nil, nil, 0, 1) // ~1 s of compute
	ms := d.ModeledTime().Milliseconds()
	if ms < 999 || ms > 1010 {
		t.Fatalf("ModeledTime ≈ %dms, want ~1000ms", ms)
	}
	d.ResetClock()
	if d.Stats().TotalCycles() != 0 {
		t.Fatal("ResetClock did not zero stats")
	}
}

func TestChargeSync(t *testing.T) {
	d, _ := NewDevice(MK2())
	d.ChargeSync()
	d.ChargeSync()
	if got := d.Stats().SyncCycles; got != 2*MK2().SyncCycles {
		t.Fatalf("SyncCycles = %d", got)
	}
}

// TestChargeExchange pins the retransmit pricing primitive: the frame's
// bytes are charged at the exchange (and, when crossing chips, the
// IPU-Link) rate without advancing the superstep clock — so a
// retransmitted collective costs cycles and bytes but keeps the
// lockstep fabric clocks aligned.
func TestChargeExchange(t *testing.T) {
	cfg := MK2()
	d, _ := NewDevice(cfg)
	before := d.Stats()
	d.ChargeExchange(4096, 0)
	s := d.Stats()
	want := cfg.ExchangeLatencyCycles + int64(4096/cfg.ExchangeBytesPerCycle)
	if got := s.ExchangeCycles - before.ExchangeCycles; got != want {
		t.Fatalf("on-chip retransmit: ExchangeCycles += %d, want %d", got, want)
	}
	if got := s.BytesExchanged - before.BytesExchanged; got != 4096 {
		t.Fatalf("BytesExchanged += %d, want 4096", got)
	}
	if s.Supersteps != before.Supersteps {
		t.Fatalf("ChargeExchange advanced the superstep clock: %d → %d", before.Supersteps, s.Supersteps)
	}

	// The same frame crossing chips pays the IPU-Link surcharge on top.
	dCross, _ := NewDevice(cfg)
	dCross.ChargeExchange(4096, 4096)
	if on, cross := s.ExchangeCycles, dCross.Stats().ExchangeCycles; cross <= on {
		t.Fatalf("cross-chip retransmit (%d) should cost more than on-chip (%d)", cross, on)
	}

	// Zero and negative byte counts are no-ops.
	dNil, _ := NewDevice(cfg)
	dNil.ChargeExchange(0, 1<<20)
	dNil.ChargeExchange(-8, 0)
	if got := dNil.Stats().ExchangeCycles; got != 0 {
		t.Fatalf("empty retransmit charged %d cycles", got)
	}
}

// Property: TileTime is monotone — adding a vertex never reduces the
// tile's compute time.
func TestTileTimeMonotoneProperty(t *testing.T) {
	cfg := MK2()
	f := func(work []uint16, extra uint16) bool {
		cycles := make([]int64, len(work))
		for i, w := range work {
			cycles[i] = int64(w)
		}
		before := cfg.TileTime(cycles)
		after := cfg.TileTime(append(cycles, int64(extra)))
		return after >= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerationConfigs(t *testing.T) {
	mk1 := MK1()
	if err := mk1.Validate(); err != nil {
		t.Fatal(err)
	}
	if mk1.Tiles() != 1216 || mk1.TileMemory != 256*1024 {
		t.Fatalf("Mk1 shape: %+v", mk1)
	}
	bow := BOW()
	if err := bow.Validate(); err != nil {
		t.Fatal(err)
	}
	if bow.Tiles() != 1472 || bow.ClockHz <= MK2().ClockHz {
		t.Fatalf("Bow shape: %+v", bow)
	}
}
