package ipu

import (
	"errors"
	"testing"

	"hunipu/internal/faultinject"
)

func TestCheckFaultNoInjector(t *testing.T) {
	d, err := NewDevice(MK2())
	if err != nil {
		t.Fatal(err)
	}
	if fe := d.CheckFault("s1_row_min", faultinject.KindSuperstep); fe != nil {
		t.Fatalf("fault without injector: %v", fe)
	}
}

func TestCheckFaultUsesSuperstepClock(t *testing.T) {
	d, err := NewDevice(MK2())
	if err != nil {
		t.Fatal(err)
	}
	sched, err := faultinject.ParseSchedule("exchange at=2")
	if err != nil {
		t.Fatal(err)
	}
	d.SetInjector(sched)
	for step := 0; step < 5; step++ {
		fe := d.CheckFault("phase", faultinject.KindSuperstep)
		if (fe != nil) != (step == 2) {
			t.Fatalf("superstep %d: fault = %v", step, fe)
		}
		d.Superstep(nil, nil, nil, 0, 0)
	}
	if d.Injector() != sched {
		t.Fatal("Injector() did not return the installed schedule")
	}
}

func TestAllocInjection(t *testing.T) {
	d, err := NewDevice(MK2())
	if err != nil {
		t.Fatal(err)
	}
	sched, err := faultinject.ParseSchedule("memory times=1")
	if err != nil {
		t.Fatal(err)
	}
	d.SetInjector(sched)
	err = d.Alloc(0, 128)
	var fe *faultinject.FaultError
	if !errors.As(err, &fe) || fe.Class != faultinject.TileMemoryPressure {
		t.Fatalf("Alloc error = %v, want TileMemoryPressure fault", err)
	}
	if got := d.Allocated(0); got != 0 {
		t.Fatalf("failed alloc still reserved %d bytes", got)
	}
	// The one-shot rule is consumed; the retry succeeds.
	if err := d.Alloc(0, 128); err != nil {
		t.Fatalf("second Alloc: %v", err)
	}
}
