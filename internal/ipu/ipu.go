// Package ipu simulates a Graphcore-style Intelligence Processing Unit
// at the level the HunIPU paper designs against: a MIMD grid of tiles,
// each with a small private SRAM and six hardware worker threads,
// connected by an all-to-all exchange fabric and executing under
// Valiant's Bulk-Synchronous Parallel (BSP) model.
//
// The simulator is a *cost-model* simulator: codelets execute natively
// in Go (so results are exact) while every BSP superstep is charged
// compute, synchronisation, and exchange cycles from the machine model.
// The four design constraints the paper enumerates are enforced or
// charged here and in package poplar:
//
//	C1 — no atomic operations: package poplar rejects compute sets in
//	     which two vertices write overlapping tensor regions.
//	C2 — modest tile memory: allocations are tracked per tile and a
//	     graph that exceeds TileMemory bytes fails to compile.
//	C3 — BSP synchronisation: a superstep costs the *maximum* tile
//	     time plus a fixed sync overhead, so imbalance is paid for.
//	C4 — slow dynamic operations: exchange traffic is charged per
//	     byte moved between tiles, so dynamic slicing strategies have
//	     measurably different costs.
package ipu

import (
	"errors"
	"fmt"
	"time"

	"hunipu/internal/faultinject"
)

// Config describes the simulated device.
type Config struct {
	// Name labels the configuration in reports.
	Name string
	// IPUs is the number of chips; tiles are numbered across all of them.
	IPUs int
	// TilesPerIPU is the tile count of one chip.
	TilesPerIPU int
	// ThreadsPerTile is the number of hardware worker threads per tile.
	ThreadsPerTile int
	// TileMemory is the per-tile SRAM size in bytes.
	TileMemory int
	// ClockHz converts cycles to modeled seconds.
	ClockHz float64
	// ExchangeBytesPerCycle is the per-tile exchange bandwidth, in
	// bytes per cycle in each direction, for on-chip traffic.
	ExchangeBytesPerCycle float64
	// InterIPUBytesPerCycle is the per-tile bandwidth for traffic that
	// crosses chips (IPU-Link), lower than on-chip exchange.
	InterIPUBytesPerCycle float64
	// SyncCycles is the fixed overhead of one BSP synchronisation.
	SyncCycles int64
	// ExchangeLatencyCycles is the fixed setup cost of an exchange
	// phase that moves at least one byte.
	ExchangeLatencyCycles int64
	// VertexOverheadCycles is the fixed dispatch cost of one vertex.
	VertexOverheadCycles int64
}

// MK2 returns the configuration of a Colossus MK2 GC200 IPU as the
// paper describes it: 1472 tiles, 6 threads per tile, 624 KiB SRAM per
// tile, 1.325 GHz clock, ~8 TB/s aggregate exchange.
func MK2() Config {
	return Config{
		Name:           "Mk2-GC200",
		IPUs:           1,
		TilesPerIPU:    1472,
		ThreadsPerTile: 6,
		TileMemory:     624 * 1024,
		ClockHz:        1.325e9,
		// The Mk2 exchange sustains ~11 GB/s per tile (8 B/cycle at
		// 1.325 GHz); compiled exchange has only a short setup cost and
		// on-chip sync completes in well under 100 ns.
		ExchangeBytesPerCycle: 8.0,
		InterIPUBytesPerCycle: 0.5,
		SyncCycles:            100,
		ExchangeLatencyCycles: 100,
		VertexOverheadCycles:  24,
	}
}

// MK1 returns the first-generation Colossus GC2 configuration: 1216
// tiles with 256 KiB each at 1.6 GHz. Useful for cross-generation
// scaling studies; note the smaller tile memory fails to fit the
// largest matrices that Mk2 handles.
func MK1() Config {
	cfg := MK2()
	cfg.Name = "Mk1-GC2"
	cfg.TilesPerIPU = 1216
	cfg.TileMemory = 256 * 1024
	cfg.ClockHz = 1.6e9
	cfg.ExchangeBytesPerCycle = 4.0
	return cfg
}

// BOW returns the Bow-2000 configuration: a wafer-on-wafer Mk2 with
// the same tile grid clocked ~40% higher.
func BOW() Config {
	cfg := MK2()
	cfg.Name = "Bow-2000"
	cfg.ClockHz = 1.85e9
	return cfg
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.IPUs <= 0:
		return fmt.Errorf("ipu: IPUs = %d, want ≥ 1", c.IPUs)
	case c.TilesPerIPU <= 0:
		return fmt.Errorf("ipu: TilesPerIPU = %d, want ≥ 1", c.TilesPerIPU)
	case c.ThreadsPerTile <= 0:
		return fmt.Errorf("ipu: ThreadsPerTile = %d, want ≥ 1", c.ThreadsPerTile)
	case c.TileMemory <= 0:
		return fmt.Errorf("ipu: TileMemory = %d, want > 0", c.TileMemory)
	case c.ClockHz <= 0:
		return fmt.Errorf("ipu: ClockHz = %g, want > 0", c.ClockHz)
	case c.ExchangeBytesPerCycle <= 0:
		return fmt.Errorf("ipu: ExchangeBytesPerCycle = %g, want > 0", c.ExchangeBytesPerCycle)
	case c.IPUs > 1 && c.InterIPUBytesPerCycle <= 0:
		// A zero IPU-Link bandwidth would silently price cross-chip
		// traffic at +Inf cycles in Superstep.
		return fmt.Errorf("ipu: InterIPUBytesPerCycle = %g with %d IPUs, want > 0", c.InterIPUBytesPerCycle, c.IPUs)
	case c.SyncCycles < 0:
		return fmt.Errorf("ipu: SyncCycles = %d, want ≥ 0", c.SyncCycles)
	case c.ExchangeLatencyCycles < 0:
		return fmt.Errorf("ipu: ExchangeLatencyCycles = %d, want ≥ 0", c.ExchangeLatencyCycles)
	case c.VertexOverheadCycles < 0:
		return fmt.Errorf("ipu: VertexOverheadCycles = %d, want ≥ 0", c.VertexOverheadCycles)
	}
	return nil
}

// CapacityError reports that a problem shape cannot fit the simulated
// fabric: even with the rows of one shard spread evenly over a chip's
// tiles, some tile would exceed its SRAM (the paper's constraint C2).
// It is a typed pre-flight error so callers fail fast with the
// limiting constraint named, instead of failing deep inside poplar's
// per-tensor allocation walk.
type CapacityError struct {
	// N is the problem size (an N×N cost matrix).
	N int
	// Shards is how many row-block shards the matrix was split into
	// (1 for an unsharded solve; the chip count for a sharded fabric).
	Shards int
	// RowsPerTile is the derived per-tile row load.
	RowsPerTile int
	// NeedBytes is the minimum per-tile footprint of those rows.
	NeedBytes int64
	// TileMemory is the per-tile budget that NeedBytes exceeds.
	TileMemory int64
	// Constraint names the violated design constraint.
	Constraint string
}

// Error implements error.
func (e *CapacityError) Error() string {
	return fmt.Sprintf("ipu: %s: n=%d over %d shard(s) needs %d rows/tile = %d bytes, tile budget %d",
		e.Constraint, e.N, e.Shards, e.RowsPerTile, e.NeedBytes, e.TileMemory)
}

// AsCapacity unwraps err to its capacity report, if any.
func AsCapacity(err error) (*CapacityError, bool) {
	var ce *CapacityError
	if errors.As(err, &ce) {
		return ce, true
	}
	return nil, false
}

// ValidateProblem checks that an n×n cost matrix, split row-block-wise
// into the given number of shards with each shard mapped onto one
// chip's TilesPerIPU tiles, can fit: the rows landing on the busiest
// tile must at least hold their float64 slack row within TileMemory.
// The estimate is deliberately conservative (slack storage only, no
// auxiliary tensors), so a nil return never guarantees compilation —
// but a CapacityError proves the shape impossible before any graph is
// built. Shards ≤ 0 means one shard per chip (c.IPUs).
func (c Config) ValidateProblem(n, shards int) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	if shards <= 0 {
		shards = c.IPUs
	}
	rowsPerShard := (n + shards - 1) / shards
	rowsPerTile := (rowsPerShard + c.TilesPerIPU - 1) / c.TilesPerIPU
	need := int64(rowsPerTile) * int64(n) * 8
	if need > int64(c.TileMemory) {
		return &CapacityError{
			N:           n,
			Shards:      shards,
			RowsPerTile: rowsPerTile,
			NeedBytes:   need,
			TileMemory:  int64(c.TileMemory),
			Constraint:  "C2 tile memory",
		}
	}
	return nil
}

// Tiles is the total tile count across all chips.
func (c Config) Tiles() int { return c.IPUs * c.TilesPerIPU }

// IPUOf returns which chip a tile lives on.
func (c Config) IPUOf(tile int) int { return tile / c.TilesPerIPU }

// Stats accumulates the modeled execution profile of a device.
type Stats struct {
	Supersteps     int64
	ComputeCycles  int64
	SyncCycles     int64
	ExchangeCycles int64
	BytesExchanged int64
	VerticesRun    int64
	// GuardCycles prices the silent-corruption guard layer (checksum
	// maintenance and verification, invariant probes) so its overhead is
	// visible in the model rather than free. Zero with GuardPolicy off.
	GuardCycles int64
}

// TotalCycles is the modeled end-to-end cycle count.
func (s Stats) TotalCycles() int64 {
	return s.ComputeCycles + s.SyncCycles + s.ExchangeCycles + s.GuardCycles
}

// Device is a simulated IPU system: it owns per-tile memory accounting
// and the BSP cycle clock. Graph construction and execution live in
// package poplar; the device only prices what it is told happened.
type Device struct {
	cfg       Config
	allocated []int64 // bytes allocated per tile
	stats     Stats
	injector  faultinject.Injector
	fabric    int // index of this chip within a multi-device fabric
}

// NewDevice creates a device for the configuration.
func NewDevice(cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Device{cfg: cfg, allocated: make([]int64, cfg.Tiles())}, nil
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Stats returns the accumulated execution profile.
func (d *Device) Stats() Stats { return d.stats }

// ResetClock zeroes the cycle counters (memory stays allocated). Used
// to exclude graph-construction or host-transfer phases from timings.
func (d *Device) ResetClock() { d.stats = Stats{} }

// SetInjector installs a fault injector consulted at every superstep,
// host transfer, and allocation. Pass nil to disable injection.
func (d *Device) SetInjector(inj faultinject.Injector) { d.injector = inj }

// SetFabricIndex labels the device with its chip index within a
// multi-device fabric; every fault point it reports then carries the
// index, so schedule rules with device= predicates can target it.
// Devices outside a fabric keep the zero index.
func (d *Device) SetFabricIndex(i int) { d.fabric = i }

// FabricIndex returns the chip index set by SetFabricIndex.
func (d *Device) FabricIndex() int { return d.fabric }

// Injector returns the installed fault injector (nil when none).
func (d *Device) Injector() faultinject.Injector { return d.injector }

// CheckFault asks the injector whether a fault fires at the current
// point in execution. The superstep coordinate is the device's
// completed-superstep count, which is monotone within a run — retries
// after a checkpoint restore keep the clock moving, so one-shot rules
// do not refire on the replayed prefix. Returns nil without an injector.
func (d *Device) CheckFault(phase string, kind faultinject.Kind) *faultinject.FaultError {
	if d.injector == nil {
		return nil
	}
	return d.injector.Check(faultinject.Point{
		Superstep: d.stats.Supersteps,
		Phase:     phase,
		Kind:      kind,
		Device:    d.fabric,
	})
}

// ModeledTime converts the accumulated cycles to simulated wall time.
func (d *Device) ModeledTime() time.Duration {
	sec := float64(d.stats.TotalCycles()) / d.cfg.ClockHz
	return time.Duration(sec * float64(time.Second))
}

// Alloc reserves n bytes on a tile, failing if the tile SRAM would
// overflow (constraint C2).
func (d *Device) Alloc(tile int, n int64) error {
	if tile < 0 || tile >= len(d.allocated) {
		return fmt.Errorf("ipu: tile %d out of range [0,%d)", tile, len(d.allocated))
	}
	if n < 0 {
		return fmt.Errorf("ipu: negative allocation %d", n)
	}
	if d.allocated[tile]+n > int64(d.cfg.TileMemory) {
		return fmt.Errorf("ipu: tile %d memory exceeded: %d + %d > %d bytes",
			tile, d.allocated[tile], n, d.cfg.TileMemory)
	}
	if fe := d.CheckFault("alloc", faultinject.KindAlloc); fe != nil {
		return fe
	}
	d.allocated[tile] += n
	return nil
}

// Allocated returns the bytes currently reserved on a tile.
func (d *Device) Allocated(tile int) int64 { return d.allocated[tile] }

// MaxAllocated returns the most loaded tile's allocation, for reports.
func (d *Device) MaxAllocated() int64 {
	var max int64
	for _, a := range d.allocated {
		if a > max {
			max = a
		}
	}
	return max
}

// Superstep charges one BSP superstep: the compute phase costs the
// slowest tile's time (C3), the sync phase a fixed overhead, and the
// exchange phase prices the heaviest tile's traffic against the fabric
// bandwidth (plus a latency if anything moved at all).
//
// tileCycles holds per-tile compute time for tiles that ran vertices;
// bytesIn/bytesOut hold per-tile exchange traffic (either may be nil).
// crossIPUBytes is the portion of traffic that crossed chips.
func (d *Device) Superstep(tileCycles map[int]int64, bytesIn, bytesOut map[int]int64, crossIPUBytes int64, vertices int64) {
	d.stats.Supersteps++
	d.stats.VerticesRun += vertices
	var maxCompute int64
	//hunipulint:ignore nodeterminism commutative max reduction; order-independent
	for _, c := range tileCycles {
		if c > maxCompute {
			maxCompute = c
		}
	}
	d.stats.ComputeCycles += maxCompute
	d.stats.SyncCycles += d.cfg.SyncCycles

	// Every byte moved appears once in bytesIn (receiver side) and once
	// in bytesOut (sender side); total traffic is counted once, while
	// the phase duration is gated by the busiest port in either
	// direction.
	var maxBytes, total int64
	//hunipulint:ignore nodeterminism commutative sum/max reduction; order-independent
	for _, b := range bytesIn {
		total += b
		if b > maxBytes {
			maxBytes = b
		}
	}
	//hunipulint:ignore nodeterminism commutative max reduction; order-independent
	for _, b := range bytesOut {
		if b > maxBytes {
			maxBytes = b
		}
	}
	if total > 0 {
		ex := d.cfg.ExchangeLatencyCycles +
			int64(float64(maxBytes)/d.cfg.ExchangeBytesPerCycle)
		if crossIPUBytes > 0 {
			ex += int64(float64(crossIPUBytes) / float64(d.cfg.Tiles()) / d.cfg.InterIPUBytesPerCycle)
		}
		d.stats.ExchangeCycles += ex
		d.stats.BytesExchanged += total
	}
}

// ChargeSync adds one bare synchronisation (used by control-flow
// predicate checks, which on hardware cost a sync but no exchange).
func (d *Device) ChargeSync() {
	d.stats.SyncCycles += d.cfg.SyncCycles
}

// ChargeExchange prices an extra exchange phase without advancing the
// superstep clock: bytes move at the on-chip rate, crossIPUBytes at
// the IPU-Link rate, exactly as in Superstep. Used for guard-layer
// frame retransmits — a retransmitted collective repeats the wire cost
// of the original frame, but it is a repair inside one BSP superstep,
// so the lockstep clocks of the other chips stay aligned.
func (d *Device) ChargeExchange(bytes, crossIPUBytes int64) {
	if bytes <= 0 {
		return
	}
	ex := d.cfg.ExchangeLatencyCycles + int64(float64(bytes)/d.cfg.ExchangeBytesPerCycle)
	if crossIPUBytes > 0 {
		ex += int64(float64(crossIPUBytes) / float64(d.cfg.Tiles()) / d.cfg.InterIPUBytesPerCycle)
	}
	d.stats.ExchangeCycles += ex
	d.stats.BytesExchanged += bytes
}

// ChargeGuard prices n cycles of guard-layer work (checksum updates,
// full verifies, invariant probes). Kept separate from compute cycles
// so reports can expose the detection/throughput trade-off directly.
func (d *Device) ChargeGuard(n int64) {
	if n > 0 {
		d.stats.GuardCycles += n
	}
}

// TileTime models the barrel-pipeline thread scheduler of one tile:
// each hardware thread issues once per ThreadsPerTile device cycles, so
// a vertex with w work-cycles occupies 6·w device cycles of wall time,
// and vertices are distributed round-robin over the threads. The tile's
// compute time is the busiest thread's total.
func (c Config) TileTime(vertexCycles []int64) int64 {
	return c.TileTimeInto(vertexCycles, make([]int64, c.ThreadsPerTile))
}

// TileTimeInto is TileTime with caller-provided per-thread scratch, for
// hot loops that model the same tile every superstep (see
// poplar's runTileVertices): threads must have at least ThreadsPerTile
// entries and is overwritten.
func (c Config) TileTimeInto(vertexCycles, threads []int64) int64 {
	t := c.ThreadsPerTile
	if len(vertexCycles) == 0 {
		return 0
	}
	threads = threads[:t]
	for i := range threads {
		threads[i] = 0
	}
	for i, w := range vertexCycles {
		threads[i%t] += w + c.VertexOverheadCycles
	}
	var max int64
	for _, v := range threads {
		if v > max {
			max = v
		}
	}
	return max * int64(t)
}
