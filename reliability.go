package hunipu

import (
	"context"
	"errors"
	"fmt"
	"time"

	"hunipu/internal/core"
	"hunipu/internal/cpuhung"
	"hunipu/internal/fastha"
	"hunipu/internal/faultinject"
	"hunipu/internal/lsap"
)

// WithFallback appends a degradation chain: when the primary device
// fails with anything other than a cancellation, the solve is retried
// on each fallback device in order, e.g.
//
//	hunipu.SolveContext(ctx, costs,
//		hunipu.WithFallback(hunipu.DeviceGPU, hunipu.DeviceCPU))
//
// runs HunIPU on the IPU, degrades to the FastHA GPU baseline if the
// IPU hard-faults, and finally to the CPU Jonker–Volgenant solver.
// The Report records every attempt and which device ultimately served.
func WithFallback(devices ...Device) Option {
	return func(c *config) { c.fallback = append(c.fallback, devices...) }
}

// WithFaultSchedule installs a deterministic fault-injection schedule,
// parsed from the faultinject spec grammar, e.g.
// "seed=7; exchange every=40 p=0.5; reset at=900". Each device attempt
// gets a fresh clone of the schedule, so a rule consumed on the
// primary still fires on a fallback. A malformed spec surfaces as an
// error from Solve/SolveContext.
func WithFaultSchedule(spec string) Option {
	return func(c *config) {
		s, err := faultinject.ParseSchedule(spec)
		if err != nil {
			c.faultErr = err
			return
		}
		c.fault = s
	}
}

// WithRecovery enables transient-fault recovery on the simulated
// devices: up to maxRetries resumes from the last superstep
// checkpoint, with backoff doubling from the given initial wait.
func WithRecovery(maxRetries int, backoff time.Duration) Option {
	return func(c *config) {
		c.retries = maxRetries
		c.backoff = backoff
	}
}

// Attempt is one device try within a solve.
type Attempt struct {
	// Device is the device tried.
	Device Device
	// Err is why the attempt failed (nil for the serving attempt).
	Err error
	// Retries counts transient faults survived on this device via
	// checkpoint-resume or transfer retry.
	Retries int
	// CheckpointsSaved and CheckpointsRestored describe the recovery
	// machinery's work during the attempt (IPU devices only).
	CheckpointsSaved    int
	CheckpointsRestored int
	// Faults counts faults injected into this attempt, including the
	// transient ones that recovery absorbed.
	Faults int64
}

// Report describes how a solve reached its answer.
type Report struct {
	// Primary is the requested device.
	Primary Device
	// Served is the device whose answer was returned.
	Served Device
	// FellBack is true when Served differs from Primary.
	FellBack bool
	// Attempts lists every device tried, in order.
	Attempts []Attempt
}

// Retries sums transient faults survived across all attempts.
func (r *Report) Retries() int {
	var n int
	for _, a := range r.Attempts {
		n += a.Retries
	}
	return n
}

// SolveContext is Solve with cancellation, deadline, fault-injection,
// and device-degradation support. Cancellation mid-solve returns
// ctx.Err() promptly (checked every BSP superstep on the IPU, every
// kernel launch on the GPU, every augmenting step on the CPU) and is
// never masked by a fallback. The returned Result carries a Report of
// every device attempt.
func SolveContext(ctx context.Context, costs [][]float64, opts ...Option) (*Result, error) {
	var c config
	for _, o := range opts {
		o(&c)
	}
	if c.faultErr != nil {
		return nil, fmt.Errorf("hunipu: %w", c.faultErr)
	}
	m, rowsN, colsN, err := squareMatrix(costs, c.maximize)
	if err != nil {
		return nil, err
	}
	start := time.Now()

	devices := append([]Device{c.device}, c.fallback...)
	report := &Report{Primary: c.device, Served: c.device}
	var (
		sol     *lsap.Solution
		modeled time.Duration
		lastErr error
	)
	for _, d := range devices {
		var att Attempt
		sol, modeled, att = c.solveOn(ctx, d, m)
		report.Attempts = append(report.Attempts, att)
		if att.Err == nil {
			report.Served = d
			report.FellBack = d != c.device
			break
		}
		lastErr = att.Err
		// Cancellation is the caller's decision; degrading to another
		// device would override it.
		if errors.Is(att.Err, context.Canceled) || errors.Is(att.Err, context.DeadlineExceeded) {
			return nil, att.Err
		}
	}
	if sol == nil {
		return nil, lastErr
	}

	a := make([]int, rowsN)
	var cost float64
	for i := 0; i < rowsN; i++ {
		j := sol.Assignment[i]
		if j >= colsN {
			j = -1
		} else {
			cost += costs[i][j]
		}
		a[i] = j
	}
	return &Result{
		Assignment: a,
		Cost:       cost,
		Device:     report.Served,
		Modeled:    modeled,
		Wall:       time.Since(start),
		Report:     report,
	}, nil
}

// solveOn runs one device attempt. Each attempt clones the fault
// schedule so deterministic rules replay identically per device.
func (c *config) solveOn(ctx context.Context, d Device, m *lsap.Matrix) (*lsap.Solution, time.Duration, Attempt) {
	att := Attempt{Device: d}
	switch d {
	case DeviceIPU:
		o := c.ipuOpts
		sched := c.fault.Clone()
		if sched != nil {
			o.Fault = sched
		}
		if c.retries > 0 {
			o.MaxRetries = c.retries
			o.RetryBackoff = c.backoff
		}
		s, err := core.New(o)
		if err != nil {
			att.Err = err
			return nil, 0, att
		}
		r, err := s.SolveDetailedContext(ctx, m)
		att.Faults = sched.Fired()
		if err != nil {
			att.Err = err
			return nil, 0, att
		}
		att.Retries = r.Recovery.Retries
		att.CheckpointsSaved = r.Recovery.CheckpointsSaved
		att.CheckpointsRestored = r.Recovery.CheckpointsRestored
		return r.Solution, r.Modeled, att
	case DeviceGPU:
		o := c.gpuOpts
		sched := c.fault.Clone()
		if sched != nil {
			o.Fault = sched
		}
		s, err := fastha.New(o)
		if err != nil {
			att.Err = err
			return nil, 0, att
		}
		r, err := s.SolvePaddedContext(ctx, m)
		att.Faults = sched.Fired()
		if err != nil {
			att.Err = err
			return nil, 0, att
		}
		return r.Solution, r.Modeled, att
	case DeviceCPU:
		// The CPU baseline runs natively on the host: no simulated
		// device, no injection — the always-available last resort.
		sol, err := (cpuhung.JV{}).SolveContext(ctx, m)
		if err != nil {
			att.Err = err
			return nil, 0, att
		}
		return sol, 0, att
	default:
		att.Err = fmt.Errorf("hunipu: unknown device %v", d)
		return nil, 0, att
	}
}
