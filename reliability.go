package hunipu

import (
	"context"
	"errors"
	"fmt"
	"time"

	"hunipu/internal/core"
	"hunipu/internal/cpuhung"
	"hunipu/internal/fastha"
	"hunipu/internal/faultinject"
	"hunipu/internal/lsap"
	"hunipu/internal/shard"
)

// ErrInvalidOption is wrapped by every option-validation failure
// surfaced from Solve/SolveContext: negative retry budgets, negative
// backoff, duplicate devices in the fallback chain, unknown devices.
// Match with errors.Is.
var ErrInvalidOption = errors.New("invalid option")

// WithFallback appends a degradation chain: when the primary device
// fails with anything other than a cancellation, the solve is retried
// on each fallback device in order, e.g.
//
//	hunipu.SolveContext(ctx, costs,
//		hunipu.WithFallback(hunipu.DeviceGPU, hunipu.DeviceCPU))
//
// runs HunIPU on the IPU, degrades to the FastHA GPU baseline if the
// IPU hard-faults, and finally to the CPU Jonker–Volgenant solver.
// The Report records every attempt and which device ultimately served.
// A chain that repeats a device (including the primary) is rejected
// with an error wrapping ErrInvalidOption.
func WithFallback(devices ...Device) Option {
	return func(c *config) { c.fallback = append(c.fallback, devices...) }
}

// WithFaultSchedule installs a deterministic fault-injection schedule,
// parsed from the faultinject spec grammar, e.g.
// "seed=7; exchange every=40 p=0.5; reset at=900". Each device attempt
// gets a fresh clone of the schedule, so a rule consumed on the
// primary still fires on a fallback. A malformed spec surfaces as an
// error from Solve/SolveContext.
func WithFaultSchedule(spec string) Option {
	return func(c *config) {
		s, err := faultinject.ParseSchedule(spec)
		if err != nil {
			c.faultErr = err
			return
		}
		c.fault = s
	}
}

// WithInjector installs a fault injector on one device's attempts.
// Unlike WithFaultSchedule the injector is NOT cloned per attempt: the
// same stateful injector is shared across every solve that passes it,
// which is what a serving layer needs to model a persistently sick
// device whose fault budget drains across requests (a times-bounded
// schedule stops firing once exhausted, letting the device recover).
// An injector set for a device takes precedence over WithFaultSchedule
// on that device. The CPU solver runs natively and ignores injectors.
func WithInjector(d Device, inj faultinject.Injector) Option {
	return func(c *config) {
		if c.injectors == nil {
			c.injectors = make(map[Device]faultinject.Injector)
		}
		c.injectors[d] = inj
	}
}

// WithRecovery enables transient-fault recovery on the simulated
// devices: up to maxRetries resumes from the last superstep
// checkpoint, with backoff doubling from the given initial wait.
// Negative maxRetries or backoff are rejected with an error wrapping
// ErrInvalidOption.
func WithRecovery(maxRetries int, backoff time.Duration) Option {
	return func(c *config) {
		c.retries = maxRetries
		c.backoff = backoff
	}
}

// Attempt is one device try within a solve.
type Attempt struct {
	// Device is the device tried.
	Device Device
	// Quality is the tier this attempt ran at, Gap the normalized
	// optimality gap it certified (0 on the exact path), and
	// WarmStarted whether a WithWarmStart prior seeded it.
	Quality     Quality
	Gap         float64
	WarmStarted bool
	// Err is why the attempt failed (nil for the serving attempt).
	Err error
	// Wall is the real time this attempt took, queueing excluded.
	Wall time.Duration
	// Retries counts transient faults survived on this device via
	// checkpoint-resume or transfer retry.
	Retries int
	// CheckpointsSaved and CheckpointsRestored describe the recovery
	// machinery's work during the attempt (IPU devices only).
	CheckpointsSaved    int
	CheckpointsRestored int
	// Faults counts faults injected into this attempt, including the
	// transient ones that recovery absorbed.
	Faults int64
	// GuardTrips counts silent-corruption detections (checksum
	// mismatches, invariant-probe failures) during the attempt; see
	// WithGuard. RollbackEpochs counts checkpoint epochs discarded as
	// poisoned during certified rollback, and DetectionLatency is the
	// worst injection-to-detection distance in supersteps (0 when
	// nothing was detected). GuardCycles is the modeled cycle cost of
	// the guard machinery (IPU attempts only).
	GuardTrips       int
	RollbackEpochs   int
	DetectionLatency int64
	GuardCycles      int64
	// IPUDetail carries the full device profile of a successful IPU
	// attempt (stats, per-compute-set breakdown when profiling is on,
	// recovery report); nil for other devices and failed attempts.
	IPUDetail *core.Result
	// GPUDetail is the FastHA profile of a successful GPU attempt.
	GPUDetail *fastha.Result
	// LostDevices lists fabric indices of chips lost during a sharded
	// IPU attempt (WithShards), in loss order; Reshards counts the live
	// re-shardings that absorbed those losses. Both are populated on
	// failed attempts too, so the Report shows what the fabric survived
	// before the fallback ladder took over.
	LostDevices []int
	Reshards    int
	// Retransmits counts collective frames a guarded sharded attempt
	// moved again after a checksum-detected corruption on the wire —
	// each retry re-priced at the modeled IPU-Link rate.
	// QuarantinedDevices lists the fabric indices the guard layer
	// Byzantine-classified and struck from the fabric (a subset of
	// LostDevices). Like LostDevices, both are populated on failed
	// attempts too.
	Retransmits        int
	QuarantinedDevices []int
	// ShardDetail is the full fabric report of a sharded IPU attempt
	// (per-chip stats, re-shard epochs, rollbacks); nil for unsharded
	// attempts. Unlike IPUDetail it is populated even when the attempt
	// failed.
	ShardDetail *shard.Result
}

// Report describes how a solve reached its answer.
type Report struct {
	// Primary is the requested device.
	Primary Device
	// Served is the device whose answer was returned.
	Served Device
	// FellBack is true when Served differs from Primary.
	FellBack bool
	// Attempts lists every device tried, in order.
	Attempts []Attempt
}

// Retries sums transient faults survived across all attempts.
func (r *Report) Retries() int {
	var n int
	for _, a := range r.Attempts {
		n += a.Retries
	}
	return n
}

// ChainError is returned by Solve/SolveContext when every device in
// the fallback chain failed. It carries the Report of all attempts so
// callers (e.g. a serving layer feeding circuit breakers) can see
// which device failed how; Unwrap exposes the last device's error, so
// errors.Is/As against typed faults keep working.
type ChainError struct {
	// Report records every failed attempt.
	Report *Report
	// Err is the final device's failure.
	Err error
}

// Error implements error.
func (e *ChainError) Error() string {
	return fmt.Sprintf("hunipu: all %d device attempts failed: %v", len(e.Report.Attempts), e.Err)
}

// Unwrap exposes the last attempt's error.
func (e *ChainError) Unwrap() error { return e.Err }

// validate checks the assembled option set; every failure wraps
// ErrInvalidOption (except fault-spec parse errors, which surface the
// faultinject error) so a serving layer can shed bad requests with a
// typed 4xx rather than a 5xx.
func (c *config) validate() error {
	if c.faultErr != nil {
		return fmt.Errorf("hunipu: %w", c.faultErr)
	}
	if c.retries < 0 {
		return fmt.Errorf("hunipu: WithRecovery: maxRetries = %d, want ≥ 0: %w", c.retries, ErrInvalidOption)
	}
	if c.backoff < 0 {
		return fmt.Errorf("hunipu: WithRecovery: backoff = %v, want ≥ 0: %w", c.backoff, ErrInvalidOption)
	}
	if !c.device.known() {
		return fmt.Errorf("hunipu: unknown device %v: %w", c.device, ErrInvalidOption)
	}
	if !c.guard.valid() {
		return fmt.Errorf("hunipu: WithGuard: unknown policy %v: %w", c.guard, ErrInvalidOption)
	}
	if c.shards < 0 {
		return fmt.Errorf("hunipu: WithShards: k = %d, want ≥ 1: %w", c.shards, ErrInvalidOption)
	}
	if c.minFabric != 0 {
		if c.shards == 0 {
			return fmt.Errorf("hunipu: WithMinShardFabric requires WithShards: %w", ErrInvalidOption)
		}
		if c.minFabric < 1 || c.minFabric > c.shards {
			return fmt.Errorf("hunipu: WithMinShardFabric: min = %d, want in [1, %d]: %w", c.minFabric, c.shards, ErrInvalidOption)
		}
	}
	if !c.quality.valid() {
		return fmt.Errorf("hunipu: WithQuality: ε = %g, want finite ≥ 0: %w", c.quality.Epsilon(), ErrInvalidOption)
	}
	if c.quality.IsBounded() && c.quality.Epsilon() > 0 && c.shards > 0 {
		return fmt.Errorf("hunipu: bounded quality does not compose with WithShards: %w", ErrInvalidOption)
	}
	seen := map[Device]bool{c.device: true}
	for _, d := range c.fallback {
		if !d.known() {
			return fmt.Errorf("hunipu: WithFallback: unknown device %v: %w", d, ErrInvalidOption)
		}
		if seen[d] {
			return fmt.Errorf("hunipu: WithFallback: device %v appears twice in the chain: %w", d, ErrInvalidOption)
		}
		seen[d] = true
	}
	return nil
}

// known reports whether d is one of the defined devices.
func (d Device) known() bool {
	return d == DeviceIPU || d == DeviceGPU || d == DeviceCPU
}

// SolveContext is Solve with cancellation, deadline, fault-injection,
// and device-degradation support. Cancellation mid-solve returns
// ctx.Err() promptly (checked every BSP superstep on the IPU, every
// kernel launch on the GPU, every augmenting step on the CPU) and is
// never masked by a fallback. The returned Result carries a Report of
// every device attempt. When every device in the chain fails, the
// error is a *ChainError wrapping the last device's failure.
func SolveContext(ctx context.Context, costs [][]float64, opts ...Option) (*Result, error) {
	var c config
	for _, o := range opts {
		o(&c)
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	m, rowsN, colsN, err := squareMatrix(costs, c.maximize)
	if err != nil {
		return nil, err
	}
	start := time.Now()

	// Degradation-ladder preparation: clamp any warm-start prior to
	// feasibility for this matrix, then pick the path. Bounded(ε>0)
	// consumes the prior as auction prices; the exact path consumes it
	// by dual pre-reduction (tight prior edges become zeros, so the
	// solved prefix of a streaming workload costs no augmenting work).
	var prior *lsap.Potentials
	if c.warmSet && m.N > 0 {
		prior, err = c.prepWarm(m, rowsN, colsN)
		if err != nil {
			return nil, err
		}
	}
	bounded := c.quality.IsBounded() && c.quality.Epsilon() > 0
	exactM := m
	if prior != nil && !bounded {
		exactM = reduceMatrix(m, *prior)
	}

	devices := append([]Device{c.device}, c.fallback...)
	report := &Report{Primary: c.device, Served: c.device}
	var (
		sol     *lsap.Solution
		modeled time.Duration
		lastErr error
	)
	for _, d := range devices {
		t0 := time.Now()
		var att Attempt
		if bounded {
			sol, modeled, att = c.solveBounded(ctx, d, m, prior)
		} else {
			sol, modeled, att = c.solveOn(ctx, d, exactM)
			att.WarmStarted = prior != nil
		}
		att.Wall = time.Since(t0)
		report.Attempts = append(report.Attempts, att)
		if att.Err == nil {
			report.Served = d
			report.FellBack = d != c.device
			break
		}
		lastErr = att.Err
		// Cancellation is the caller's decision; degrading to another
		// device would override it.
		if errors.Is(att.Err, context.Canceled) || errors.Is(att.Err, context.DeadlineExceeded) {
			return nil, att.Err
		}
	}
	if sol == nil {
		return nil, &ChainError{Report: report, Err: lastErr}
	}

	a := make([]int, rowsN)
	var cost float64
	for i := 0; i < rowsN; i++ {
		j := sol.Assignment[i]
		if j >= colsN {
			j = -1
		} else {
			cost += costs[i][j]
		}
		a[i] = j
	}
	res := &Result{
		Assignment: a,
		Cost:       cost,
		Device:     report.Served,
		Modeled:    modeled,
		Wall:       time.Since(start),
		Report:     report,
		Quality:    c.quality,
		Gap:        sol.Gap,
	}
	if sol.Potentials != nil {
		// An exact solve on the pre-reduced matrix certifies c−u′−v′;
		// adding the prior back makes the potentials a certificate for
		// the original matrix again, and trimming drops the padding.
		d := &Duals{
			U: append([]float64(nil), sol.Potentials.U[:rowsN]...),
			V: append([]float64(nil), sol.Potentials.V[:colsN]...),
		}
		if prior != nil && !bounded {
			for i := range d.U {
				d.U[i] += prior.U[i]
			}
			for j := range d.V {
				d.V[j] += prior.V[j]
			}
		}
		res.Duals = d
	}
	return res, nil
}

// injectorFor resolves the injector for one device attempt: a shared
// WithInjector injector wins; otherwise the schedule is cloned so
// deterministic rules replay identically per device.
func (c *config) injectorFor(d Device) faultinject.Injector {
	if inj, ok := c.injectors[d]; ok {
		return inj
	}
	if s := c.fault.Clone(); s != nil {
		return s
	}
	return nil
}

// firedCount reads the fire counter of schedule-backed injectors (the
// only stateful kind the repo ships); other injectors report 0.
func firedCount(inj faultinject.Injector) int64 {
	if s, ok := inj.(*faultinject.Schedule); ok {
		return s.Fired()
	}
	return 0
}

// solveOn runs one device attempt.
func (c *config) solveOn(ctx context.Context, d Device, m *lsap.Matrix) (*lsap.Solution, time.Duration, Attempt) {
	att := Attempt{Device: d}
	switch d {
	case DeviceIPU:
		if c.shards > 0 {
			return c.solveSharded(ctx, m)
		}
		o := c.ipuOpts
		inj := c.injectorFor(d)
		if inj != nil {
			o.Fault = inj
		}
		if c.retries > 0 {
			o.MaxRetries = c.retries
			o.RetryBackoff = c.backoff
		}
		o.Guard = c.resolveGuard(o.Guard, inj)
		s, err := core.New(o)
		if err != nil {
			att.Err = err
			return nil, 0, att
		}
		before := firedCount(inj)
		r, err := s.SolveDetailedContext(ctx, m)
		att.Faults = firedCount(inj) - before
		if err != nil {
			att.Err = err
			return nil, 0, att
		}
		att.Retries = r.Recovery.Retries
		att.CheckpointsSaved = r.Recovery.CheckpointsSaved
		att.CheckpointsRestored = r.Recovery.CheckpointsRestored
		att.GuardTrips = r.Recovery.GuardTrips
		att.RollbackEpochs = r.Recovery.RollbackEpochs
		att.DetectionLatency = r.Recovery.DetectionLatency
		att.GuardCycles = r.Stats.GuardCycles
		att.IPUDetail = r
		return r.Solution, r.Modeled, att
	case DeviceGPU:
		o := c.gpuOpts
		inj := c.injectorFor(d)
		if inj != nil {
			o.Fault = inj
		}
		s, err := fastha.New(o)
		if err != nil {
			att.Err = err
			return nil, 0, att
		}
		before := firedCount(inj)
		r, err := s.SolvePaddedContext(ctx, m)
		att.Faults = firedCount(inj) - before
		if err != nil {
			att.Err = err
			return nil, 0, att
		}
		att.GPUDetail = r
		return r.Solution, r.Modeled, att
	case DeviceCPU:
		// The CPU baseline runs natively on the host: no simulated
		// device, no injection — the always-available last resort.
		sol, err := (cpuhung.JV{}).SolveContext(ctx, m)
		if err != nil {
			att.Err = err
			return nil, 0, att
		}
		return sol, 0, att
	default:
		att.Err = fmt.Errorf("hunipu: unknown device %v", d)
		return nil, 0, att
	}
}
